package core

import (
	"fmt"

	"repro/internal/chain"
	"repro/internal/cryptoutil"
)

// This file is the deployment's adversarial control surface, the
// byzantine counterpart to faults.go: network partitions, equivocating
// proposers, and invalid-block injection. The deployment plays the
// attacker with the materials a real one would need (a compromised
// validator's signing key, a cut network) and exposes each node's
// verdict so the scenario engine can assert the honest majority rejects
// every move.

// PartitionValidators splits the cluster in two: the listed validators
// form an isolated minority cell; everyone else (always including
// validator 0, the oracle host — pod hosts ride with the quorum) keeps
// sealing as the quorum cell. Cross-cell traffic is buffered and then
// dropped. The minority must be non-empty, strictly less than half the
// cluster, and fully live — a down or crashed validator is already cut
// off, and layering a partition over it would make heal-time convergence
// ill-defined.
func (d *Deployment) PartitionValidators(minority ...int) error {
	if len(minority) == 0 {
		return fmt.Errorf("core: empty minority cell")
	}
	if 2*len(minority) >= len(d.Nodes) {
		return fmt.Errorf("core: minority of %d leaves no quorum among %d validators",
			len(minority), len(d.Nodes))
	}
	seen := make(map[int]bool, len(minority))
	for _, i := range minority {
		if i <= 0 || i >= len(d.Nodes) {
			if i == 0 {
				return fmt.Errorf("core: validator 0 (oracle host) must stay in the quorum cell")
			}
			return fmt.Errorf("core: validator %d out of range [0,%d)", i, len(d.Nodes))
		}
		if seen[i] {
			return fmt.Errorf("core: validator %d listed twice", i)
		}
		seen[i] = true
		if d.ValidatorCrashed(i) || d.ValidatorDown(i) {
			return fmt.Errorf("core: validator %d is down; partition requires live members", i)
		}
	}
	cells := make(map[cryptoutil.Address]int, len(d.addrs))
	for i, addr := range d.addrs {
		if seen[i] {
			cells[addr] = 1
		} else {
			cells[addr] = 0
		}
	}
	return d.Network.Partition(cells)
}

// HealPartition reconnects a split cluster: buffered cross-cell traffic
// is dropped and every lagging live validator re-syncs (re-validating
// each block) from the most advanced peer. Returns the number of blocks
// synced and the number of deliveries dropped.
func (d *Deployment) HealPartition() (synced, dropped int, err error) {
	return d.Network.Heal()
}

// ValidatorPartitioned reports whether validator i is currently cut off
// in a minority cell.
func (d *Deployment) ValidatorPartitioned(i int) bool {
	if i < 0 || i >= len(d.Nodes) {
		return false
	}
	return d.Network.IsPartitioned(d.addrs[i])
}

// Partitioned reports whether a partition is currently active.
func (d *Deployment) Partitioned() bool { return d.Network.Partitioned() }

// SetEquivocationGuard enables (default) or disables equivocation
// rejection on every validator, persisting the choice across
// crash-restarts. Disabling is deliberate sabotage for soak-style
// testing: the scenario engine's no-equivocation-accepted invariant must
// catch the resulting silent acceptance.
func (d *Deployment) SetEquivocationGuard(enabled bool) {
	d.mu.Lock()
	d.equivGuardOff = !enabled
	d.mu.Unlock()
	for _, n := range d.Nodes {
		if n != nil {
			n.SetEquivocationGuard(enabled)
		}
	}
}

// EquivocationReport describes one injected double-seal attempt.
type EquivocationReport struct {
	// Height is the contested height; Proposer the index of the validator
	// whose key sealed both blocks.
	Height   uint64
	Proposer int
	// Committed is the honestly broadcast block's hash; Forged the
	// conflicting sibling's.
	Committed, Forged cryptoutil.Hash
	// Rejections maps each targeted validator to its verdict on the forged
	// sibling (expected: chain.ErrEquivocation; nil means it was accepted
	// or silently swallowed — an invariant violation when the guard is on).
	Rejections map[int]error
}

// Equivocate makes the next block's proposer seal twice: the cluster
// commits the honest block via the normal broadcast, then a forged
// sibling at the same height — validly signed with the proposer's own
// key — is gossiped to each target validator, modeling the "different
// blocks to different peer subsets" attack. Targets must be live,
// uncrashed, and unpartitioned: a lagging node would accept the sibling
// as a plain extension and the injected state would no longer model
// equivocation but a hard fork.
func (d *Deployment) Equivocate(targets []int) (*EquivocationReport, error) {
	if len(targets) == 0 {
		return nil, fmt.Errorf("core: no equivocation targets")
	}
	seen := make(map[int]bool, len(targets))
	for _, t := range targets {
		if t < 0 || t >= len(d.Nodes) {
			return nil, fmt.Errorf("core: validator %d out of range [0,%d)", t, len(d.Nodes))
		}
		if seen[t] {
			return nil, fmt.Errorf("core: validator %d targeted twice", t)
		}
		seen[t] = true
		if d.ValidatorCrashed(t) || d.ValidatorDown(t) || d.ValidatorPartitioned(t) {
			return nil, fmt.Errorf("core: validator %d is unreachable; equivocation targets must be synced", t)
		}
	}

	block, err := d.Network.SealNext()
	if err != nil {
		return nil, fmt.Errorf("core: sealing the honest block: %w", err)
	}
	proposer := -1
	for i, addr := range d.addrs {
		if addr == block.Header.Proposer {
			proposer = i
			break
		}
	}
	if proposer < 0 {
		return nil, fmt.Errorf("core: proposer %s not a deployment validator", block.Header.Proposer.Short())
	}
	key := d.nodeCfgs[proposer].Key
	forged, err := chain.ForgeEquivocalSibling(block, key)
	if err != nil {
		return nil, err
	}
	report := &EquivocationReport{
		Height:     block.Header.Number,
		Proposer:   proposer,
		Committed:  block.Hash(),
		Forged:     forged.Hash(),
		Rejections: make(map[int]error, len(targets)),
	}
	for _, t := range targets {
		report.Rejections[t] = d.Network.DeliverTo(d.addrs[t], forged, key.PublicBytes())
	}
	return report, nil
}

// InjectInvalidBlock forges a block that is invalid in exactly one
// dimension (state root, proposer signature, or per-tx gas cap), signed
// with validator proposer's key, and delivers it to each target via the
// byzantine hook. It returns each target's verdict; every honest node
// must reject with the kind's distinct error and its head must not move.
// Targets must be live, uncrashed, and unpartitioned (same reasoning as
// Equivocate: the forgery must contend with the current head, not extend
// a stale one).
func (d *Deployment) InjectInvalidBlock(kind chain.InvalidBlockKind, proposer int, targets []int) (map[int]error, error) {
	if proposer < 0 || proposer >= len(d.Nodes) {
		return nil, fmt.Errorf("core: proposer %d out of range [0,%d)", proposer, len(d.Nodes))
	}
	if len(targets) == 0 {
		return nil, fmt.Errorf("core: no injection targets")
	}
	ref := d.LiveNode()
	if ref == nil {
		return nil, fmt.Errorf("core: no live validator to forge against")
	}
	seen := make(map[int]bool, len(targets))
	for _, t := range targets {
		if t < 0 || t >= len(d.Nodes) {
			return nil, fmt.Errorf("core: validator %d out of range [0,%d)", t, len(d.Nodes))
		}
		if seen[t] {
			return nil, fmt.Errorf("core: validator %d targeted twice", t)
		}
		seen[t] = true
		if d.ValidatorCrashed(t) || d.ValidatorDown(t) || d.ValidatorPartitioned(t) {
			return nil, fmt.Errorf("core: validator %d is unreachable; injection targets must be synced", t)
		}
	}
	key := d.nodeCfgs[proposer].Key
	forged, err := chain.ForgeInvalidBlock(ref, key, kind)
	if err != nil {
		return nil, err
	}
	verdicts := make(map[int]error, len(targets))
	for _, t := range targets {
		verdicts[t] = d.Network.DeliverTo(d.addrs[t], forged, key.PublicBytes())
	}
	return verdicts, nil
}
