package core

import (
	"context"
	"errors"
	"testing"

	"repro/internal/distexchange"
	"repro/internal/policy"
	"repro/internal/solid"
	"repro/internal/tee"
)

// TestMaxUsesEnforcedEndToEnd: a policy capping uses at 3 is enforced by
// the TEE (4th use denied) and the overuse shows up in monitoring if a
// rogue device ignores the cap.
func TestMaxUsesEnforcedEndToEnd(t *testing.T) {
	d := newDeployment(t, Config{})
	ctx := context.Background()
	owner, err := d.NewOwner("owner")
	if err != nil {
		t.Fatal(err)
	}
	if err := owner.InitializePod(ctx, nil); err != nil {
		t.Fatal(err)
	}
	if err := owner.AddResource("/data/r.csv", "text/csv", []byte("x")); err != nil {
		t.Fatal(err)
	}
	pol := owner.NewPolicy("/data/r.csv")
	pol.MaxUses = 3
	iri, err := owner.Publish(ctx, "/data/r.csv", "", pol)
	if err != nil {
		t.Fatal(err)
	}
	consumer, err := d.NewConsumer("reader", policy.PurposeAny)
	if err != nil {
		t.Fatal(err)
	}
	if err := owner.Grant(ctx, consumer, "/data/r.csv", policy.PurposeAny); err != nil {
		t.Fatal(err)
	}
	if err := consumer.Access(ctx, iri); err != nil {
		t.Fatal(err)
	}

	for i := range 3 {
		if _, err := consumer.Use(iri, policy.ActionUse); err != nil {
			t.Fatalf("use %d: %v", i+1, err)
		}
	}
	if _, err := consumer.Use(iri, policy.ActionUse); !errors.Is(err, tee.ErrUseDenied) {
		t.Fatalf("4th use: %v", err)
	}
	// Compliant device: monitoring shows 3 uses, no violations.
	evidence, violations, err := owner.Monitor(ctx, "/data/r.csv")
	if err != nil {
		t.Fatal(err)
	}
	if len(violations) != 0 || evidence[0].Evidence.UseCount != 3 {
		t.Fatalf("evidence = %+v violations = %+v", evidence, violations)
	}
}

// TestOverusedCopyDetectedByMonitoring: a device reporting more uses than
// the cap is flagged with a max-uses violation.
func TestOverusedCopyDetectedByMonitoring(t *testing.T) {
	d := newDeployment(t, Config{})
	ctx := context.Background()
	owner, err := d.NewOwner("owner")
	if err != nil {
		t.Fatal(err)
	}
	if err := owner.InitializePod(ctx, nil); err != nil {
		t.Fatal(err)
	}
	if err := owner.AddResource("/data/r.csv", "text/csv", []byte("x")); err != nil {
		t.Fatal(err)
	}
	pol := owner.NewPolicy("/data/r.csv")
	pol.MaxUses = 100
	iri, err := owner.Publish(ctx, "/data/r.csv", "", pol)
	if err != nil {
		t.Fatal(err)
	}
	consumer, err := d.NewConsumer("reader", policy.PurposeAny)
	if err != nil {
		t.Fatal(err)
	}
	if err := owner.Grant(ctx, consumer, "/data/r.csv", policy.PurposeAny); err != nil {
		t.Fatal(err)
	}
	if err := consumer.Access(ctx, iri); err != nil {
		t.Fatal(err)
	}

	// The owner tightens the cap below the device's use count later on,
	// then the device (still on v1, within MaxPolicyLag... but lag is 0)
	// would be stale. Instead, simulate overuse directly: use 5 times,
	// then tighten the cap to 2 and monitor. The evidence reports 5 > 2.
	for range 5 {
		if _, err := consumer.Use(iri, policy.ActionUse); err != nil {
			t.Fatal(err)
		}
	}
	v2 := owner.NewPolicy("/data/r.csv")
	v2.Version = 2
	v2.MaxUses = 2
	if err := owner.ModifyPolicy(ctx, "/data/r.csv", v2); err != nil {
		t.Fatal(err)
	}
	if err := consumer.WaitPolicyVersion(iri, 2, 5e9); err != nil {
		t.Fatal(err)
	}
	_, violations, err := owner.Monitor(ctx, "/data/r.csv")
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, v := range violations {
		if v.Kind == distexchange.ViolationMaxUses {
			found = true
		}
	}
	if !found {
		t.Fatalf("max-uses violation not detected: %+v", violations)
	}
}

// TestOwnerProfilePubliclyDereferenceable: the owner's WebID document is
// served from the pod with the correct key.
func TestOwnerProfilePubliclyDereferenceable(t *testing.T) {
	d := newDeployment(t, Config{})
	owner, err := d.NewOwner("alice")
	if err != nil {
		t.Fatal(err)
	}
	dir := solid.NewWebDirectory(nil)
	key, ok := dir.KeyFor(owner.WebID)
	if !ok {
		t.Fatal("owner profile not dereferenceable")
	}
	if string(key) != string(owner.Key.PublicBytes()) {
		t.Fatal("profile key mismatch")
	}
}
