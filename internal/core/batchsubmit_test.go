package core

import (
	"context"
	"encoding/json"
	"fmt"
	"testing"
	"time"

	"repro/internal/chain"
	"repro/internal/cryptoutil"
	"repro/internal/distexchange"
)

// buildRegisterPodBatch signs n registerPod transactions from one sender
// with consecutive nonces starting at the sender's current nonce.
func buildRegisterPodBatch(t *testing.T, d *Deployment, key *cryptoutil.KeyPair, n int, tag string) []*chain.Tx {
	t.Helper()
	nonce := d.Nodes[0].NonceFor(key.Address())
	txs := make([]*chain.Tx, n)
	for i := range n {
		args := distexchange.RegisterPodArgs{
			OwnerWebID: fmt.Sprintf("https://%s%d.example/profile#me", tag, i),
			Location:   fmt.Sprintf("https://%s%d.example/", tag, i),
		}
		tx, err := chain.NewTx(key, nonce, d.DEAddr, "registerPod", args, distexchange.DefaultGasLimit)
		if err != nil {
			t.Fatal(err)
		}
		txs[i] = tx
		nonce++
	}
	return txs
}

// TestDeploymentSubmitBatchSealOnSubmit checks that the batched ingestion
// path commits the whole batch, replicates it to every validator, and
// leaves receipts addressable by the returned hashes.
func TestDeploymentSubmitBatchSealOnSubmit(t *testing.T) {
	d, err := NewDeployment(Config{Validators: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	key := cryptoutil.MustGenerateKey()
	txs := buildRegisterPodBatch(t, d, key, 12, "batch")
	hashes, err := d.SubmitBatch(txs)
	if err != nil {
		t.Fatal(err)
	}
	if len(hashes) != len(txs) {
		t.Fatalf("hashes = %d, want %d", len(hashes), len(txs))
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	for i, h := range hashes {
		r, err := d.Nodes[0].WaitForReceipt(ctx, h)
		if err != nil {
			t.Fatalf("receipt %d: %v", i, err)
		}
		if !r.Succeeded() {
			t.Fatalf("tx %d reverted: %s", i, r.Err)
		}
	}
	// Every validator converged on the same head and drained its mempool.
	head := d.Nodes[0].Head().Hash()
	for _, n := range d.Nodes[1:] {
		if n.Head().Hash() != head {
			t.Fatalf("validator %s diverged", n.Address().Short())
		}
		if n.PendingTxs() != 0 {
			t.Fatalf("validator %s has %d pending txs", n.Address().Short(), n.PendingTxs())
		}
	}
	// The DE App observed all registrations.
	args, err := json.Marshal(distexchange.GetPodArgs{OwnerWebID: "https://batch0.example/profile#me"})
	if err != nil {
		t.Fatal(err)
	}
	raw, err := d.Nodes[0].Query(d.DEAddr, "getPod", args)
	if err != nil {
		t.Fatalf("getPod after batch: %v", err)
	}
	if len(raw) == 0 {
		t.Fatal("empty pod record")
	}
}

// TestHarnessAblationBatchSubmit runs the batch-submission ablation in
// quick mode and checks the table's shape: positive timings for both
// modes at every block size.
func TestHarnessAblationBatchSubmit(t *testing.T) {
	tbl := quickHarness().AblationBatchSubmit()
	if len(tbl.Rows) < 2 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		if parseF(t, row[1]) <= 0 || parseF(t, row[2]) <= 0 {
			t.Fatalf("non-positive timing: %v", row)
		}
	}
}

// TestHarnessAblationParallelVerify runs the verification ablation in
// quick mode; both the sequential and concurrent pools must ingest the
// batch correctly (timings positive, not shape-compared because the CI
// container may be single-core).
func TestHarnessAblationParallelVerify(t *testing.T) {
	tbl := quickHarness().AblationParallelVerify()
	if len(tbl.Rows) < 2 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		if parseF(t, row[1]) <= 0 || parseF(t, row[2]) <= 0 {
			t.Fatalf("non-positive timing: %v", row)
		}
	}
}
