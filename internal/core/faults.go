package core

import (
	"fmt"

	"repro/internal/chain"
	"repro/internal/cryptoutil"
)

// This file holds the deployment's fault-injection and introspection
// hooks: controlled validator failures/recoveries and consistent state
// snapshots. The scenario engine (internal/scenario) drives them to
// exercise the whole architecture under faults; they are equally usable
// from tests and examples.

// LiveNode returns a node whose ledger is advancing (nil when the whole
// cluster is down).
func (d *Deployment) LiveNode() *chain.Node { return d.Network.LiveNode() }

// FailValidator marks validator i as failed: it stops sealing and stops
// receiving broadcasts until recovered. Failing the last live validator
// is refused — a cluster with no live authority can only deadlock
// callers.
func (d *Deployment) FailValidator(i int) error {
	if i < 0 || i >= len(d.Nodes) {
		return fmt.Errorf("core: validator %d out of range [0,%d)", i, len(d.Nodes))
	}
	addr := d.Nodes[i].Address()
	d.Network.SetDown(addr, true)
	if d.Network.LiveNode() == nil {
		d.Network.SetDown(addr, false)
		return fmt.Errorf("core: refusing to fail validator %d: no live validator would remain", i)
	}
	return nil
}

// RecoverValidator brings validator i back and syncs it from a live peer,
// returning the number of blocks caught up.
func (d *Deployment) RecoverValidator(i int) (int, error) {
	if i < 0 || i >= len(d.Nodes) {
		return 0, fmt.Errorf("core: validator %d out of range [0,%d)", i, len(d.Nodes))
	}
	return d.Network.Recover(d.Nodes[i].Address())
}

// ValidatorDown reports whether validator i is currently failed.
func (d *Deployment) ValidatorDown(i int) bool {
	if i < 0 || i >= len(d.Nodes) {
		return false
	}
	return d.Network.IsDown(d.Nodes[i].Address())
}

// Snapshot is a consistent cross-layer view of deployment state, taken
// for invariant checking and failure reports.
type Snapshot struct {
	// Height and HeadHash describe the first live node's chain tip.
	Height   uint64
	HeadHash cryptoutil.Hash
	// LiveHeads maps each live validator index to its head hash (failed
	// validators are omitted; their ledgers are frozen by design).
	LiveHeads map[int]cryptoutil.Hash
	// StateKeys is the live node's state size.
	StateKeys int
	// TotalGas is the live node's cumulative gas expenditure.
	TotalGas uint64
	// PendingTxs is the largest live mempool backlog.
	PendingTxs int
	// MarketRevenue is the market's undistributed fee revenue.
	MarketRevenue uint64
	// OracleIn / OracleOut count oracle messages so far.
	OracleIn, OracleOut uint64
}

// TakeSnapshot captures a Snapshot from the deployment's live nodes.
func (d *Deployment) TakeSnapshot() Snapshot {
	s := Snapshot{LiveHeads: make(map[int]cryptoutil.Hash)}
	if live := d.Network.LiveNode(); live != nil {
		head := live.Head()
		s.Height = head.Header.Number
		s.HeadHash = head.Hash()
		s.StateKeys = live.State().Len()
		s.TotalGas = live.Costs().TotalSpent()
	}
	for i, n := range d.Nodes {
		if !d.Network.IsDown(n.Address()) {
			s.LiveHeads[i] = n.Head().Hash()
		}
	}
	s.PendingTxs = d.Network.PendingTxs()
	s.MarketRevenue = d.Market.Revenue()
	s.OracleIn = d.Metrics.In.Load()
	s.OracleOut = d.Metrics.Out.Load()
	return s
}
