package core

import (
	"fmt"
	"os"

	"repro/internal/chain"
	"repro/internal/cryptoutil"
)

// This file holds the deployment's fault-injection and introspection
// hooks: controlled validator failures/recoveries and consistent state
// snapshots. The scenario engine (internal/scenario) drives them to
// exercise the whole architecture under faults; they are equally usable
// from tests and examples.

// LiveNode returns a node whose ledger is advancing (nil when the whole
// cluster is down).
func (d *Deployment) LiveNode() *chain.Node { return d.Network.LiveNode() }

// FailValidator marks validator i as failed: it stops sealing and stops
// receiving broadcasts until recovered. Failing the last live validator
// is refused — a cluster with no live authority can only deadlock
// callers.
func (d *Deployment) FailValidator(i int) error {
	if i < 0 || i >= len(d.Nodes) {
		return fmt.Errorf("core: validator %d out of range [0,%d)", i, len(d.Nodes))
	}
	addr := d.addrs[i]
	d.Network.SetDown(addr, true)
	if d.Network.LiveNode() == nil {
		d.Network.SetDown(addr, false)
		return fmt.Errorf("core: refusing to fail validator %d: no live validator would remain", i)
	}
	return nil
}

// RecoverValidator brings validator i back and syncs it from a live peer,
// returning the number of blocks caught up. A crashed validator (its
// in-memory node was dropped) cannot be recovered this way — its RAM
// state is gone by construction; use RestartValidatorFromDisk.
func (d *Deployment) RecoverValidator(i int) (int, error) {
	if i < 0 || i >= len(d.Nodes) {
		return 0, fmt.Errorf("core: validator %d out of range [0,%d)", i, len(d.Nodes))
	}
	if d.ValidatorCrashed(i) {
		return 0, fmt.Errorf("core: validator %d crashed; restart it from disk", i)
	}
	return d.Network.Recover(d.addrs[i])
}

// ValidatorDown reports whether validator i is currently failed (crashed
// validators are down until restarted).
func (d *Deployment) ValidatorDown(i int) bool {
	if i < 0 || i >= len(d.Nodes) {
		return false
	}
	return d.Network.IsDown(d.addrs[i])
}

// ValidatorCrashed reports whether validator i's in-memory node has been
// dropped by CrashValidator and not yet restarted.
func (d *Deployment) ValidatorCrashed(i int) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.crashed[i]
}

// CrashValidator kills validator i the hard way: the node stops without
// flushing its store and the in-memory object is dropped entirely, so
// the only route back is RestartValidatorFromDisk. It requires a durable
// deployment (Config.DataDir). Validator 0 is refused — it hosts the
// oracle subscriptions, whose event-feed registrations would dangle on a
// fresh node object (fail it with FailValidator instead) — as is
// crashing the last live validator.
func (d *Deployment) CrashValidator(i int) error {
	if i <= 0 || i >= len(d.Nodes) {
		if i == 0 {
			return fmt.Errorf("core: refusing to crash validator 0 (oracle host); use FailValidator")
		}
		return fmt.Errorf("core: validator %d out of range [0,%d)", i, len(d.Nodes))
	}
	if len(d.nodeCfgs[i].DataDir) == 0 {
		return fmt.Errorf("core: validator %d is not durable (deployment has no DataDir)", i)
	}
	node := d.Nodes[i]
	if node == nil {
		return fmt.Errorf("core: validator %d already crashed", i)
	}
	addr := d.addrs[i]
	d.Network.SetDown(addr, true)
	if d.Network.LiveNode() == nil {
		d.Network.SetDown(addr, false)
		return fmt.Errorf("core: refusing to crash validator %d: no live validator would remain", i)
	}
	d.mu.Lock()
	d.crashed[i] = true
	d.mu.Unlock()
	d.Nodes[i] = nil
	return node.Crash()
}

// RestartValidatorFromDisk reopens a crashed validator from its durable
// store — snapshot load plus WAL tail replay — swaps it into the
// cluster, and syncs the blocks sealed during its downtime from a live
// peer. It returns the number of blocks caught up post-restart.
func (d *Deployment) RestartValidatorFromDisk(i int) (int, error) {
	if i < 0 || i >= len(d.Nodes) {
		return 0, fmt.Errorf("core: validator %d out of range [0,%d)", i, len(d.Nodes))
	}
	if !d.ValidatorCrashed(i) {
		return 0, fmt.Errorf("core: validator %d has not crashed", i)
	}
	node, err := chain.OpenNode(d.nodeCfgs[i])
	if err != nil {
		return 0, fmt.Errorf("core: reopen validator %d: %w", i, err)
	}
	if err := d.Network.Replace(node); err != nil {
		node.Close()
		return 0, err
	}
	d.Nodes[i] = node
	d.mu.Lock()
	delete(d.crashed, i)
	guardOff := d.equivGuardOff
	d.mu.Unlock()
	if guardOff {
		// The deployment-wide sabotage (SetEquivocationGuard(false)) must
		// survive the restart, or a crash would quietly re-arm the guard.
		node.SetEquivocationGuard(false)
	}
	return d.Network.Recover(d.addrs[i])
}

// TruncateValidatorWAL chops n bytes off the tail of a crashed
// validator's write-ahead log — the mid-record torn-tail fault a machine
// crash leaves behind. Recovery must survive it by rolling back to the
// last complete block and re-syncing the difference from peers.
func (d *Deployment) TruncateValidatorWAL(i int, n int64) error {
	if i < 0 || i >= len(d.Nodes) {
		return fmt.Errorf("core: validator %d out of range [0,%d)", i, len(d.Nodes))
	}
	if !d.ValidatorCrashed(i) {
		return fmt.Errorf("core: validator %d must be crashed before its WAL is damaged", i)
	}
	path := chain.WALPath(d.nodeCfgs[i].DataDir)
	info, err := os.Stat(path)
	if err != nil {
		return fmt.Errorf("core: stat validator %d wal: %w", i, err)
	}
	size := info.Size() - n
	if size < 0 {
		size = 0
	}
	return os.Truncate(path, size)
}

// Snapshot is a consistent cross-layer view of deployment state, taken
// for invariant checking and failure reports.
type Snapshot struct {
	// Height and HeadHash describe the first live node's chain tip.
	Height   uint64
	HeadHash cryptoutil.Hash
	// LiveHeads maps each live validator index to its head hash (failed
	// validators are omitted; their ledgers are frozen by design).
	LiveHeads map[int]cryptoutil.Hash
	// StateKeys is the live node's state size.
	StateKeys int
	// TotalGas is the live node's cumulative gas expenditure.
	TotalGas uint64
	// PendingTxs is the largest live mempool backlog.
	PendingTxs int
	// MarketRevenue is the market's undistributed fee revenue.
	MarketRevenue uint64
	// OracleIn / OracleOut count oracle messages so far.
	OracleIn, OracleOut uint64
}

// TakeSnapshot captures a Snapshot from the deployment's live nodes.
func (d *Deployment) TakeSnapshot() Snapshot {
	s := Snapshot{LiveHeads: make(map[int]cryptoutil.Hash)}
	if live := d.Network.LiveNode(); live != nil {
		head := live.Head()
		s.Height = head.Header.Number
		s.HeadHash = head.Hash()
		s.StateKeys = live.State().Len()
		s.TotalGas = live.Costs().TotalSpent()
	}
	for i, n := range d.Nodes {
		if n != nil && !d.Network.IsDown(n.Address()) {
			s.LiveHeads[i] = n.Head().Hash()
		}
	}
	s.PendingTxs = d.Network.PendingTxs()
	s.MarketRevenue = d.Market.Revenue()
	s.OracleIn = d.Metrics.In.Load()
	s.OracleOut = d.Metrics.Out.Load()
	return s
}
