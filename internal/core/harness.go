package core

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"os"
	"sort"
	"time"

	"repro/internal/chain"
	"repro/internal/contract"
	"repro/internal/cryptoutil"
	"repro/internal/distexchange"
	"repro/internal/obs"
	"repro/internal/podmanager"
	"repro/internal/policy"
	"repro/internal/simclock"
	"repro/internal/solid"
	"repro/internal/store"
	"repro/internal/tee"
)

// Harness runs the experiment suite of EXPERIMENTS.md. Each method boots
// a fresh deployment, drives one experiment, and returns a Table whose
// shape is compared against the paper's qualitative claims.
type Harness struct {
	// Quick shrinks sweep sizes (used by -short tests).
	Quick bool
}

func (h *Harness) sweep(full []int) []int {
	if h.Quick && len(full) > 2 {
		return full[:2]
	}
	return full
}

func must[T any](v T, err error) T {
	if err != nil {
		panic(fmt.Sprintf("harness: %v", err))
	}
	return v
}

func must0(err error) {
	if err != nil {
		panic(fmt.Sprintf("harness: %v", err))
	}
}

// newOwnerWithResource boots an owner with one published resource of the
// given size and policy mutator.
func ownerWithResource(d *Deployment, name string, size int, mutate func(*policy.Policy)) (*Owner, string) {
	ctx := context.Background()
	o := must(d.NewOwner(name))
	must0(o.InitializePod(ctx, nil))
	data := bytes.Repeat([]byte("x"), size)
	must0(o.AddResource("/data/r.bin", "application/octet-stream", data))
	pol := o.NewPolicy("/data/r.bin")
	if mutate != nil {
		mutate(pol)
	}
	iri := must(o.Publish(ctx, "/data/r.bin", "exp resource", pol))
	return o, iri
}

// E1PodInitiation measures the Fig. 2(1) process: end-to-end latency and
// gas of registering pods through the push-in oracle.
func (h *Harness) E1PodInitiation() *Table {
	t := &Table{
		Title:  "E1 pod initiation (Fig. 2-1): latency and gas per registration",
		Header: []string{"pods", "avg_latency_us", "avg_gas", "total_gas"},
	}
	for _, n := range h.sweep([]int{1, 8, 32, 128}) {
		d := must(NewDeployment(Config{}))
		ctx := context.Background()
		owners := make([]*Owner, n)
		for i := range n {
			owners[i] = must(d.NewOwner(fmt.Sprintf("owner%d", i)))
		}
		start := time.Now()
		for _, o := range owners {
			must0(o.InitializePod(ctx, nil))
		}
		elapsed := time.Since(start)
		costs := d.Nodes[0].Costs().ByOperation()
		var avgGas, totalGas uint64
		for _, op := range costs {
			if op.Method == "registerPod" {
				avgGas, totalGas = op.AvgGas(), op.TotalGas
			}
		}
		t.Add(n, float64(elapsed.Microseconds())/float64(n), avgGas, totalGas)
		d.Close()
	}
	return t
}

// E2ResourceInitiation measures Fig. 2(2): publication latency and gas as
// the per-pod resource count grows.
func (h *Harness) E2ResourceInitiation() *Table {
	t := &Table{
		Title:  "E2 resource initiation (Fig. 2-2): latency and gas vs resources per pod",
		Header: []string{"resources", "avg_latency_us", "avg_gas", "index_size"},
	}
	for _, n := range h.sweep([]int{1, 16, 64, 256}) {
		d := must(NewDeployment(Config{}))
		ctx := context.Background()
		o := must(d.NewOwner("owner"))
		must0(o.InitializePod(ctx, nil))
		start := time.Now()
		for i := range n {
			path := fmt.Sprintf("/data/r%04d.bin", i)
			must0(o.AddResource(path, "application/octet-stream", []byte("payload")))
			must(o.Publish(ctx, path, "exp", nil))
		}
		elapsed := time.Since(start)
		var avgGas uint64
		for _, op := range d.Nodes[0].Costs().ByOperation() {
			if op.Method == "registerResource" {
				avgGas = op.AvgGas()
			}
		}
		consumer := must(d.NewConsumer("reader", policy.PurposeAny))
		catalog := must(consumer.ListCatalog())
		t.Add(n, float64(elapsed.Microseconds())/float64(n), avgGas, len(catalog))
		d.Close()
	}
	return t
}

// E3ResourceIndexing measures Fig. 2(3): pull-out oracle read latency as
// the on-chain index grows.
func (h *Harness) E3ResourceIndexing() *Table {
	t := &Table{
		Title:  "E3 resource indexing (Fig. 2-3): pull-out read latency vs index size",
		Header: []string{"index_size", "point_lookup_us", "full_listing_us"},
	}
	for _, n := range h.sweep([]int{16, 64, 256, 1024}) {
		d := must(NewDeployment(Config{}))
		ctx := context.Background()
		o := must(d.NewOwner("owner"))
		must0(o.InitializePod(ctx, nil))
		var lastIRI string
		for i := range n {
			path := fmt.Sprintf("/data/r%05d.bin", i)
			must0(o.AddResource(path, "application/octet-stream", []byte("p")))
			lastIRI = must(o.Publish(ctx, path, "exp", nil))
		}
		consumer := must(d.NewConsumer("reader", policy.PurposeAny))

		const lookups = 50
		start := time.Now()
		for range lookups {
			must(consumer.Index(lastIRI))
		}
		point := time.Since(start)

		start = time.Now()
		must(consumer.ListCatalog())
		listing := time.Since(start)

		t.Add(n, float64(point.Microseconds())/lookups, float64(listing.Microseconds()))
		d.Close()
	}
	return t
}

// E4ResourceAccess measures Fig. 2(4): end-to-end access latency
// (index + fee + certificate + HTTP fetch + TEE store + on-chain
// confirmation) against resource size.
func (h *Harness) E4ResourceAccess() *Table {
	t := &Table{
		Title:  "E4 resource access (Fig. 2-4): end-to-end latency vs resource size",
		Header: []string{"size_bytes", "access_latency_ms", "fetch_only_ms"},
	}
	for _, size := range h.sweep([]int{1 << 10, 64 << 10, 1 << 20, 8 << 20}) {
		d := must(NewDeployment(Config{}))
		ctx := context.Background()
		owner, iri := ownerWithResource(d, "owner", size, nil)
		consumer := must(d.NewConsumer("reader", policy.PurposeAny))
		must0(owner.Grant(ctx, consumer, "/data/r.bin", policy.PurposeAny))

		start := time.Now()
		must0(consumer.Access(ctx, iri))
		access := time.Since(start)

		// Fetch-only: plain authorized HTTP GET with a fresh certificate,
		// averaged over a few repetitions to smooth network jitter.
		cert := must(d.Market.PayFee(string(consumer.WebID), iri))
		decorate := must(podmanager.AttachCertificate(cert))
		client := solid.NewClient(consumer.WebID, consumer.Key, d.Clock)
		client.Decorate = podmanager.Decorators(decorate, podmanager.AttachTEEQuote(consumer.Device))
		const fetches = 5
		start = time.Now()
		for range fetches {
			_, _, err := client.Get(iri)
			must0(err)
		}
		fetch := time.Since(start) / fetches

		t.Add(size, float64(access.Microseconds())/1000, float64(fetch.Microseconds())/1000)
		d.Close()
	}
	return t
}

// E5PolicyModification measures Fig. 2(5): update propagation to all
// copy-holders and obligation execution, versus holder count.
func (h *Harness) E5PolicyModification() *Table {
	t := &Table{
		Title:  "E5 policy modification (Fig. 2-5): propagation latency vs copy holders",
		Header: []string{"holders", "propagation_ms", "deleted_after_expiry"},
	}
	for _, n := range h.sweep([]int{1, 4, 16, 64}) {
		d := must(NewDeployment(Config{}))
		ctx := context.Background()
		owner, iri := ownerWithResource(d, "owner", 1024, func(p *policy.Policy) {
			p.MaxRetention = 30 * 24 * time.Hour
		})
		consumers := make([]*Consumer, n)
		for i := range n {
			consumers[i] = must(d.NewConsumer(fmt.Sprintf("c%d", i), policy.PurposeWebAnalytics))
			must0(owner.Grant(ctx, consumers[i], "/data/r.bin", policy.PurposeWebAnalytics))
			must0(consumers[i].Access(ctx, iri))
		}

		v2 := owner.NewPolicy("/data/r.bin")
		v2.Version = 2
		v2.MaxRetention = 7 * 24 * time.Hour
		start := time.Now()
		must0(owner.ModifyPolicy(ctx, "/data/r.bin", v2))
		for _, c := range consumers {
			must0(c.WaitPolicyVersion(iri, 2, 10*time.Second))
		}
		propagation := time.Since(start)

		// Advance past the new deadline; every copy must be gone.
		d.Clock.Advance(7*24*time.Hour + time.Minute)
		deleted := 0
		for _, c := range consumers {
			if !c.App.Holds(iri) {
				deleted++
			}
		}
		t.Add(n, float64(propagation.Microseconds())/1000, fmt.Sprintf("%d/%d", deleted, n))
		d.Close()
	}
	return t
}

// E6PolicyMonitoring measures Fig. 2(6): monitoring round latency and
// evidence volume versus device count.
func (h *Harness) E6PolicyMonitoring() *Table {
	t := &Table{
		Title:  "E6 policy monitoring (Fig. 2-6): round latency vs holders",
		Header: []string{"devices", "round_ms", "evidence", "violations"},
	}
	for _, n := range h.sweep([]int{1, 4, 16, 64}) {
		d := must(NewDeployment(Config{}))
		ctx := context.Background()
		owner, iri := ownerWithResource(d, "owner", 1024, nil)
		for i := range n {
			c := must(d.NewConsumer(fmt.Sprintf("c%d", i), policy.PurposeAny))
			must0(owner.Grant(ctx, c, "/data/r.bin", policy.PurposeAny))
			must0(c.Access(ctx, iri))
			_, err := c.Use(iri, policy.ActionUse)
			must0(err)
		}
		start := time.Now()
		evidence, violations, err := owner.Monitor(ctx, "/data/r.bin")
		must0(err)
		elapsed := time.Since(start)
		t.Add(n, float64(elapsed.Microseconds())/1000, len(evidence), len(violations))
		d.Close()
	}
	return t
}

// E7LocalVsRemote quantifies the §V-1 privacy/latency claim: once the TEE
// holds a copy, local use avoids pod round trips.
func (h *Harness) E7LocalVsRemote() *Table {
	t := &Table{
		Title:  "E7 privacy (§V-1): local TEE use vs remote pod re-fetch",
		Header: []string{"size_bytes", "tee_use_us", "http_refetch_us", "speedup"},
	}
	for _, size := range h.sweep([]int{1 << 10, 64 << 10, 1 << 20}) {
		d := must(NewDeployment(Config{}))
		ctx := context.Background()
		owner, iri := ownerWithResource(d, "owner", size, nil)
		consumer := must(d.NewConsumer("reader", policy.PurposeAny))
		must0(owner.Grant(ctx, consumer, "/data/r.bin", policy.PurposeAny))
		must0(consumer.Access(ctx, iri))

		const reads = 30
		start := time.Now()
		for range reads {
			_, err := consumer.Use(iri, policy.ActionUse)
			must0(err)
		}
		local := time.Since(start)

		cert := must(d.Market.PayFee(string(consumer.WebID), iri))
		decorate := must(podmanager.AttachCertificate(cert))
		client := solid.NewClient(consumer.WebID, consumer.Key, d.Clock)
		client.Decorate = decorate
		start = time.Now()
		for range reads {
			_, _, err := client.Get(iri)
			must0(err)
		}
		remote := time.Since(start)

		localUS := float64(local.Microseconds()) / reads
		remoteUS := float64(remote.Microseconds()) / reads
		t.Add(size, localUS, remoteUS, remoteUS/localUS)
		d.Close()
	}
	return t
}

// E8Security exercises the §V-2 tamper cases end to end and reports that
// each is rejected.
func (h *Harness) E8Security() *Table {
	t := &Table{
		Title:  "E8 security (§V-2): attack rejection",
		Header: []string{"attack", "rejected"},
	}
	d := must(NewDeployment(Config{Validators: 2}))
	defer d.Close()
	ctx := context.Background()
	owner, iri := ownerWithResource(d, "owner", 1024, nil)
	consumer := must(d.NewConsumer("reader", policy.PurposeAny))
	must0(owner.Grant(ctx, consumer, "/data/r.bin", policy.PurposeAny))
	must0(consumer.Access(ctx, iri))

	report := func(name string, err error) { t.Add(name, err != nil) }

	// 1. Forged evidence signature.
	signed, err := consumer.App.Evidence(iri, 0)
	must0(err)
	forged := signed
	forged.Evidence.UseCount += 99 // tamper without re-signing
	_, err = consumer.DE.SubmitEvidence(ctx, forged)
	report("tampered evidence content", err)

	// 2. Policy update by a non-owner.
	v2 := owner.NewPolicy("/data/r.bin")
	v2.Version = 2
	_, err = consumer.DE.UpdatePolicy(ctx, distexchange.UpdatePolicyArgs{ResourceIRI: iri, Policy: v2})
	report("policy update by non-owner", err)

	// 3. Unattested device registration (certificate from the wrong CA).
	_, err = consumer.DE.RegisterDevice(ctx, []byte(`{"serial":1}`))
	report("unattested device registration", err)

	// 4. Pod access with a certificate for another resource.
	wrongCert := must(d.Market.PayFee(string(consumer.WebID), "https://other/resource"))
	decorate := must(podmanager.AttachCertificate(wrongCert))
	client := solid.NewClient(consumer.WebID, consumer.Key, d.Clock)
	client.Decorate = decorate
	_, _, err = client.Get(iri)
	report("certificate for wrong resource", err)

	// 5. Unauthenticated pod write.
	anon := &solid.Client{Clock: d.Clock}
	err = anon.Put(iri, "text/plain", []byte("defaced"))
	report("anonymous pod write", err)

	// 6. Tampered block rejected by a validator.
	head := d.Nodes[0].Head()
	bad := *head
	bad.Header.StateRoot = [32]byte{0xde, 0xad}
	err = d.Nodes[1].ApplyBlock(&bad, nil)
	report("tampered block", err)

	return t
}

// E9Gas reports the §V-4 affordability table: gas per DE App operation
// and cumulative cost of the motivating scenario.
func (h *Harness) E9Gas() *Table {
	t := &Table{
		Title:  "E9 affordability (§V-4): gas per DE App operation",
		Header: []string{"operation", "count", "avg_gas", "total_gas"},
	}
	d := must(NewDeployment(Config{}))
	defer d.Close()
	ctx := context.Background()

	// Run the full motivating scenario once.
	owner, iri := ownerWithResource(d, "alice", 4096, func(p *policy.Policy) {
		p.MaxRetention = 30 * 24 * time.Hour
	})
	consumer := must(d.NewConsumer("bob", policy.PurposeWebAnalytics))
	must0(owner.Grant(ctx, consumer, "/data/r.bin", policy.PurposeWebAnalytics))
	must0(consumer.Access(ctx, iri))
	_, err := consumer.Use(iri, policy.ActionUse)
	must0(err)
	v2 := owner.NewPolicy("/data/r.bin")
	v2.Version = 2
	v2.MaxRetention = 7 * 24 * time.Hour
	must0(owner.ModifyPolicy(ctx, "/data/r.bin", v2))
	must0(consumer.WaitPolicyVersion(iri, 2, 5*time.Second))
	_, _, err = owner.Monitor(ctx, "/data/r.bin")
	must0(err)

	for _, op := range d.Nodes[0].Costs().ByOperation() {
		t.Add(op.Method, op.Count, op.AvgGas(), op.TotalGas)
	}
	t.Add("TOTAL", "-", "-", d.Nodes[0].Costs().TotalSpent())
	return t
}

// E10Overhead compares resource access under the usage-control
// architecture against the plain-Solid baseline (§V-3 integrateability:
// usage control is an overlay whose cost shows up only on governed
// operations).
func (h *Harness) E10Overhead() *Table {
	t := &Table{
		Title:  "E10 overhead vs plain Solid: authorized read latency",
		Header: []string{"accesses", "baseline_us_per_op", "usage_control_us_per_op", "overhead_x"},
	}
	for _, n := range h.sweep([]int{10, 50, 200}) {
		// Baseline: plain Solid pod, WAC only.
		b := NewBaseline(time.Time{})
		bOwner := b.NewOwner("owner")
		must0(bOwner.Add("/data/r.bin", "application/octet-stream", bytes.Repeat([]byte("x"), 4096), b.Clock.Now()))
		bClient, bWebID := b.NewClient("reader")
		must0(bOwner.GrantRead(bWebID, "/data/r.bin"))
		start := time.Now()
		for range n {
			_, _, err := bClient.Get(bOwner.URL() + "/data/r.bin")
			must0(err)
		}
		baseline := time.Since(start)
		b.Close()

		// Usage control: authorized read with certificate on every fetch.
		d := must(NewDeployment(Config{}))
		ctx := context.Background()
		owner, iri := ownerWithResource(d, "owner", 4096, nil)
		consumer := must(d.NewConsumer("reader", policy.PurposeAny))
		must0(owner.Grant(ctx, consumer, "/data/r.bin", policy.PurposeAny))
		cert := must(d.Market.PayFee(string(consumer.WebID), iri))
		decorate := must(podmanager.AttachCertificate(cert))
		client := solid.NewClient(consumer.WebID, consumer.Key, d.Clock)
		client.Decorate = decorate
		start = time.Now()
		for range n {
			_, _, err := client.Get(iri)
			must0(err)
		}
		uc := time.Since(start)
		d.Close()

		baseUS := float64(baseline.Microseconds()) / float64(n)
		ucUS := float64(uc.Microseconds()) / float64(n)
		t.Add(n, baseUS, ucUS, ucUS/baseUS)
	}
	return t
}

// E11Remuneration exercises the §V-4 future-work economics: market
// revenue is redistributed to owners proportionally to the accesses their
// resources received.
func (h *Harness) E11Remuneration() *Table {
	t := &Table{
		Title:  "E11 remuneration (§V-4 future work): access-proportional payout",
		Header: []string{"owner", "accesses", "payout", "share_pct"},
	}
	d := must(NewDeployment(Config{}))
	defer d.Close()
	ctx := context.Background()

	// Three owners with one resource each; consumers access them with a
	// 6:3:1 ratio.
	ratios := []int{6, 3, 1}
	owners := make([]*Owner, len(ratios))
	iris := make([]string, len(ratios))
	for i := range ratios {
		o := must(d.NewOwner(fmt.Sprintf("owner%d", i)))
		must0(o.InitializePod(ctx, nil))
		path := "/data/r.bin"
		must0(o.AddResource(path, "application/octet-stream", []byte("payload")))
		iris[i] = must(o.Publish(ctx, path, "exp", nil))
		owners[i] = o
	}
	consumerIdx := 0
	for i, ratio := range ratios {
		for range ratio {
			c := must(d.NewConsumer(fmt.Sprintf("c%d", consumerIdx), policy.PurposeAny))
			consumerIdx++
			must0(owners[i].Grant(ctx, c, "/data/r.bin", policy.PurposeAny))
			must0(c.Access(ctx, iris[i]))
		}
	}
	revenue := d.Market.Revenue()
	payouts, err := d.Market.Settle(10) // 10% market margin
	must0(err)
	for _, p := range payouts {
		t.Add(p.OwnerWebID, p.Accesses, p.Amount, 100*float64(p.Amount)/float64(revenue))
	}
	return t
}

// E12Robustness measures the §V-2 availability claim quantitatively: a
// 4-validator cluster keeps accepting and executing transactions as
// validators fail, with throughput roughly flat (clique-style fallback:
// any live authority may seal).
func (h *Harness) E12Robustness() *Table {
	t := &Table{
		Title:  "E12 robustness (§V-2): throughput under validator failures",
		Header: []string{"validators_down", "txs", "wall_ms", "tx_per_sec", "live_heights_equal"},
	}
	const txs = 40
	for _, down := range []int{0, 1, 2, 3} {
		d := must(NewDeployment(Config{Validators: 4}))
		ctx := context.Background()
		owner := must(d.NewOwner("owner"))
		for i := range down {
			d.Network.SetDown(d.Nodes[1+i].Address(), true)
		}
		start := time.Now()
		for i := range txs {
			must(owner.Manager.DE().RegisterPod(ctx, distexchange.RegisterPodArgs{
				OwnerWebID: fmt.Sprintf("%s/profile#p%d", owner.URL(), i),
				Location:   owner.URL() + "/",
			}))
		}
		elapsed := time.Since(start)

		// Live nodes must agree on the resulting chain.
		equal := true
		liveHead := d.Nodes[0].Head().Hash()
		for i := 1 + down; i < 4; i++ {
			if d.Nodes[i].Head().Hash() != liveHead {
				equal = false
			}
		}
		t.Add(down, txs, float64(elapsed.Microseconds())/1000,
			float64(txs)/elapsed.Seconds(), equal)
		d.Close()
	}
	return t
}

// AblationBlockInterval measures policy propagation in *simulated* time
// under interval sealing: latency is dominated by the block interval, the
// DESIGN.md ablation 1 claim.
func (h *Harness) AblationBlockInterval() *Table {
	t := &Table{
		Title:  "Ablation: block interval vs policy propagation (simulated time)",
		Header: []string{"interval_ms", "propagation_sim_ms"},
	}
	for _, interval := range []time.Duration{0, 50 * time.Millisecond, 200 * time.Millisecond, time.Second} {
		d := must(NewDeployment(Config{Sealing: SealManually}))
		ctx := context.Background()

		// Drive consensus on a background pump so setup (which waits for
		// receipts) can proceed, sealing a block per interval of simulated
		// time (or continuously for interval 0).
		stop := make(chan struct{})
		pumpDone := make(chan struct{})
		go func() {
			defer close(pumpDone)
			for {
				select {
				case <-stop:
					return
				default:
					if d.Nodes[0].PendingTxs() > 0 {
						if interval > 0 {
							d.Clock.Advance(interval)
						}
						_, _ = d.SealBlock()
					}
					time.Sleep(200 * time.Microsecond)
				}
			}
		}()

		owner, iri := ownerWithResource(d, "owner", 512, nil)
		consumer := must(d.NewConsumer("c", policy.PurposeAny))
		must0(owner.Grant(ctx, consumer, "/data/r.bin", policy.PurposeAny))
		must0(consumer.Access(ctx, iri))

		simStart := d.Clock.Now()
		v2 := owner.NewPolicy("/data/r.bin")
		v2.Version = 2
		v2.MaxRetention = 7 * 24 * time.Hour
		must0(owner.ModifyPolicy(ctx, "/data/r.bin", v2))
		must0(consumer.WaitPolicyVersion(iri, 2, 10*time.Second))
		simElapsed := d.Clock.Now().Sub(simStart)

		close(stop)
		<-pumpDone
		t.Add(interval.Milliseconds(), float64(simElapsed.Microseconds())/1000)
		d.Close()
	}
	return t
}

// AblationOracleFanout compares sequential vs concurrent evidence
// collection in the pull-in oracle (DESIGN.md ablation 2).
func (h *Harness) AblationOracleFanout() *Table {
	t := &Table{
		Title:  "Ablation: pull-in oracle fan-out vs sequential collection",
		Header: []string{"devices", "sequential_ms", "fanout_ms"},
	}
	run := func(n int, fanout bool) float64 {
		d := must(NewDeployment(Config{OracleFanout: fanout}))
		defer d.Close()
		ctx := context.Background()
		owner, iri := ownerWithResource(d, "owner", 512, nil)
		for i := range n {
			c := must(d.NewConsumer(fmt.Sprintf("c%d", i), policy.PurposeAny))
			must0(owner.Grant(ctx, c, "/data/r.bin", policy.PurposeAny))
			must0(c.Access(ctx, iri))
		}
		start := time.Now()
		_, _, err := owner.Monitor(ctx, "/data/r.bin")
		must0(err)
		return float64(time.Since(start).Microseconds()) / 1000
	}
	for _, n := range h.sweep([]int{4, 16, 48}) {
		t.Add(n, run(n, false), run(n, true))
	}
	return t
}

// batchScenario boots a validator cluster with manual sealing, submits n
// uniquely-addressed registerPod transactions from one sender — either
// one at a time or as a single batch — drives consensus until the
// mempool drains, and returns the wall-clock milliseconds for the whole
// ingestion+consensus round.
func batchScenario(n, validators, verifyWorkers int, batch bool) float64 {
	d := must(NewDeployment(Config{
		Validators:    validators,
		Sealing:       SealManually,
		VerifyWorkers: verifyWorkers,
	}))
	defer d.Close()

	key := cryptoutil.MustGenerateKey()
	txs := make([]*chain.Tx, n)
	for i := range n {
		args := distexchange.RegisterPodArgs{
			OwnerWebID: fmt.Sprintf("https://owner%d.example/profile#me", i),
			Location:   fmt.Sprintf("https://owner%d.example/", i),
		}
		txs[i] = must(chain.NewTx(key, uint64(i), d.DEAddr, "registerPod", args, distexchange.DefaultGasLimit))
	}

	start := time.Now()
	if batch {
		must(d.SubmitBatch(txs))
	} else {
		// Seed semantics: every node verifies and admits each transaction
		// independently (what SubmitEverywhere did before verification was
		// hoisted to the network layer).
		for _, tx := range txs {
			for _, n := range d.Nodes {
				must(n.SubmitTx(tx))
			}
		}
	}
	for d.Nodes[0].PendingTxs() > 0 {
		must(d.SealBlock())
	}
	return float64(time.Since(start).Microseconds()) / 1000
}

// AblationBatchSubmit compares per-transaction submission (one signature
// verification per node per transaction, one mempool lock acquisition
// each — the seed's SubmitEverywhere semantics) against batched
// submission (one concurrent verification pass for the cluster, one lock
// acquisition per node) at growing block sizes.
func (h *Harness) AblationBatchSubmit() *Table {
	t := &Table{
		Title:  "Ablation: per-tx vs batched submission (3 validators, manual sealing)",
		Header: []string{"txs", "per_tx_ms", "batch_ms", "speedup"},
	}
	for _, n := range h.sweep([]int{32, 128, 512}) {
		perTx := batchScenario(n, 3, 0, false)
		batched := batchScenario(n, 3, 0, true)
		t.Add(n, perTx, batched, perTx/batched)
	}
	return t
}

// AblationParallelVerify compares sequential signature verification
// (VerifyWorkers=1, the seed behaviour) against the bounded concurrent
// pool (VerifyWorkers=0 → GOMAXPROCS) for whole-batch ingestion and
// block validation on a 3-validator cluster.
func (h *Harness) AblationParallelVerify() *Table {
	t := &Table{
		Title:  "Ablation: sequential vs concurrent signature verification (3 validators)",
		Header: []string{"txs", "sequential_ms", "parallel_ms", "speedup"},
	}
	for _, n := range h.sweep([]int{64, 256, 1024}) {
		seq := batchScenario(n, 3, 1, true)
		par := batchScenario(n, 3, 0, true)
		t.Add(n, seq, par, seq/par)
	}
	return t
}

// durabilityScenario measures the write-ahead-log cost on the ingestion
// hot path and the crash-recovery time it buys: a single durable
// validator ingests n registerPod transactions in batches (sealing until
// drained), closes, and reopens from disk. It returns ingestion and
// reopen wall-clock milliseconds plus the recovered height. durable=false
// runs the in-memory baseline (reopen time is then zero).
func durabilityScenario(n int, durable bool, sync store.SyncPolicy, snapshotEvery int) (ingestMS, reopenMS float64, height uint64) {
	manufacturer := must(tee.NewManufacturer("tee-manufacturer"))
	runtime := contract.NewRuntime()
	deAddr := runtime.Deploy(distexchange.ContractName, distexchange.New(distexchange.Config{
		ManufacturerCAKey: manufacturer.CAPublicBytes(),
		ManufacturerCA:    manufacturer.CAAddress(),
	}))
	key := cryptoutil.MustGenerateKey()
	clk := simclock.NewSim(defaultGenesis)
	cfg := chain.Config{
		Key:         key,
		Authorities: []cryptoutil.Address{key.Address()},
		Executor:    runtime,
		Clock:       clk,
		GenesisTime: defaultGenesis,
	}
	if durable {
		dir, err := os.MkdirTemp("", "durability-ablation-*")
		must0(err)
		defer os.RemoveAll(dir)
		cfg.DataDir = dir
		cfg.SnapshotInterval = snapshotEvery
		cfg.Persist = store.Options{Sync: sync}
	}
	node := must(chain.OpenNode(cfg))

	txs := make([]*chain.Tx, n)
	for i := range n {
		args := distexchange.RegisterPodArgs{
			OwnerWebID: fmt.Sprintf("https://owner%d.example/profile#me", i),
			Location:   fmt.Sprintf("https://owner%d.example/", i),
		}
		txs[i] = must(chain.NewTx(key, uint64(i), deAddr, "registerPod", args, distexchange.DefaultGasLimit))
	}
	const batch = 64
	start := time.Now()
	for at := 0; at < n; at += batch {
		end := min(at+batch, n)
		must(node.SubmitBatch(txs[at:end]))
		clk.Advance(time.Second)
		for node.PendingTxs() > 0 {
			must(node.Seal())
		}
	}
	ingestMS = float64(time.Since(start).Microseconds()) / 1000
	must0(node.Close())

	if durable {
		start = time.Now()
		reopened := must(chain.OpenNode(cfg))
		reopenMS = float64(time.Since(start).Microseconds()) / 1000
		height = reopened.Height()
		must0(reopened.Close())
	}
	return ingestMS, reopenMS, height
}

// AblationDurability quantifies the durability subsystem: ingestion
// throughput under each WAL fsync policy against the in-memory baseline,
// and the crash-recovery (reopen) time the store buys. The snapshot
// interval is fixed; BenchmarkSnapshotRecovery sweeps it.
func (h *Harness) AblationDurability() *Table {
	t := &Table{
		Title:  "Ablation: durability (WAL fsync policy vs ingestion + recovery, 1 validator)",
		Header: []string{"mode", "txs", "ingest_ms", "reopen_ms", "reopened_height"},
	}
	n := 512
	if h.Quick {
		n = 96
	}
	modes := []struct {
		name    string
		durable bool
		sync    store.SyncPolicy
	}{
		{"memory", false, store.SyncNever},
		{"wal-never", true, store.SyncNever},
		{"wal-interval", true, store.SyncInterval},
		{"wal-always", true, store.SyncAlways},
	}
	for _, m := range modes {
		ingest, reopen, height := durabilityScenario(n, m.durable, m.sync, 16)
		if !m.durable {
			t.Add(m.name, n, ingest, "-", "-")
			continue
		}
		t.Add(m.name, n, ingest, reopen, height)
	}
	return t
}

// AblationCommitPath quantifies the commit-path overhaul: per-block
// validation cost on the historical Clone() replay versus the
// copy-on-write overlay replay as the ledger grows. Clone cost is
// O(ledger) — it deep-copies every key before executing — while the
// overlay only pays for the keys the block touches, so its column stays
// flat and the speedup column grows with ledger size.
// BenchmarkOverlayApplyBlock, BenchmarkCodecEncodeBlock, and
// BenchmarkCommitLatency cover the same ground under `go test -bench`.
func (h *Harness) AblationCommitPath() *Table {
	// overlay_us leads the latency columns deliberately: BenchRows takes
	// the first one as ns_op, so the tracked perf-trajectory number is
	// the live overlay path, with the clone baseline printed beside it.
	t := &Table{
		Title:  "Ablation: commit path (copy-on-write overlay vs Clone() block validation)",
		Header: []string{"ledger_keys", "touched_keys", "overlay_us", "clone_us", "speedup"},
	}
	const touched = 64
	reps := 20
	if h.Quick {
		reps = 5
	}
	for _, ledger := range h.sweep([]int{1_000, 10_000, 100_000}) {
		st := chain.NewState()
		for i := range ledger {
			st.Set(fmt.Sprintf("seed/%07d", i), []byte(fmt.Sprintf("value-%d", i)))
		}
		st.DiscardJournal()
		workload := func(rw chain.StateRW, rep int) {
			for i := range touched {
				rw.Set(fmt.Sprintf("seed/%07d", (rep*touched+i)%ledger), []byte("updated"))
			}
		}
		start := time.Now()
		for rep := range reps {
			replica := st.Clone()
			workload(replica, rep)
			_ = replica.TakeDiff()
		}
		cloneUs := float64(time.Since(start).Microseconds()) / float64(reps)
		start = time.Now()
		for rep := range reps {
			overlay := chain.NewOverlay(st)
			workload(overlay, rep)
			_ = overlay.TakeDeltas()
		}
		overlayUs := float64(time.Since(start).Microseconds()) / float64(reps)
		speedup := cloneUs
		if overlayUs > 0 {
			speedup = cloneUs / overlayUs
		}
		t.Add(ledger, touched, overlayUs, cloneUs, speedup)
	}
	return t
}

// parexecExecutor is the parallel-execution ablation workload: per
// transaction, a deterministic CPU burn (iterated hashing, standing in
// for contract logic) followed by one read-modify-write of the key in
// the args. Unique keys make a conflict-free block; one shared key makes
// every transaction conflict with its predecessor.
type parexecExecutor struct {
	rounds int
}

type parexecArgs struct {
	Key string `json:"key"`
}

func (e parexecExecutor) ExecuteTx(st chain.StateRW, tx *chain.Tx, bctx chain.BlockContext) *chain.Receipt {
	var args parexecArgs
	if err := json.Unmarshal(tx.Args, &args); err != nil {
		return &chain.Receipt{Status: chain.StatusReverted, Err: err.Error()}
	}
	sum := sha256.Sum256(tx.Args)
	for range e.rounds {
		sum = sha256.Sum256(sum[:])
	}
	key := tx.Contract.String() + "/" + args.Key
	prev, _ := st.Get(key)
	st.Set(key, append(prev[:0:0], sum[:8]...))
	return &chain.Receipt{Status: chain.StatusOK, GasUsed: chain.GasTxBase}
}

func (parexecExecutor) Query(chain.StateRW, cryptoutil.Address, string, []byte, chain.BlockContext) ([]byte, error) {
	return nil, fmt.Errorf("parexec executor serves no queries")
}

// AblationParExec quantifies the parallel intra-block scheduler: block
// execution latency across worker counts on a conflict-free workload
// (expected near-linear scaling with cores; workers=1 is the exact
// serial path) and on a 100%-conflict workload (every optimistic result
// is discarded, so the bar is graceful degradation). On a single-core
// host every worker count collapses to roughly serial cost plus
// scheduler overhead — the speedup column then reads ≈1, not >1.
// BenchmarkParallelExecution covers the same ground under `go test
// -bench`; the differential tests in internal/chain pin that every
// worker count is bit-identical.
func (h *Harness) AblationParExec() *Table {
	// block_us leads the latency columns: BenchRows tracks the scheduled
	// (parallel) path, with the serial baseline printed beside it.
	t := &Table{
		Title:  "Ablation: parallel intra-block execution (read/write-set scheduler)",
		Header: []string{"conflicts", "workers", "txs", "block_us", "serial_us", "speedup"},
	}
	txCount := 1000
	reps := 5
	if h.Quick {
		txCount, reps = 200, 2
	}
	ex := parexecExecutor{rounds: 32}
	key := cryptoutil.MustGenerateKey()
	addr := contract.AddressFor("parexec-ablation")
	st := chain.NewState()
	for i := range 10_000 {
		st.Set(fmt.Sprintf("seed/%07d", i), []byte("seed-value"))
	}
	st.DiscardJournal()
	bctx := chain.BlockContext{Number: 1, Time: defaultGenesis}

	signBlock := func(hotKey string) []*chain.Tx {
		txs := make([]*chain.Tx, txCount)
		for i := range txs {
			k := hotKey
			if k == "" {
				k = fmt.Sprintf("k%04d", i)
			}
			txs[i] = must(chain.NewTx(key, uint64(i), addr, "rmw", parexecArgs{Key: k}, 200_000))
		}
		return txs
	}
	run := func(txs []*chain.Tx, workers int) float64 {
		start := time.Now()
		for range reps {
			_, _ = chain.ReplayBlock(ex, st, txs, bctx, workers)
		}
		return float64(time.Since(start).Microseconds()) / float64(reps)
	}
	for _, wl := range []struct {
		name   string
		hotKey string
	}{
		{"0pct", ""},
		{"100pct", "hot"},
	} {
		txs := signBlock(wl.hotKey)
		serial := run(txs, 1)
		for _, workers := range []int{2, 4, 8} {
			par := run(txs, workers)
			speedup := 0.0
			if par > 0 {
				speedup = serial / par
			}
			t.Add(wl.name, workers, txCount, par, serial, speedup)
		}
	}
	return t
}

// floodScenario drives one validator through `rounds` sealing rounds
// while eight hostile senders spray price-1 transactions at mult× the
// block size each round (mult=0 substitutes honest DefaultGasPrice
// traffic of one block per round, so block sizes — and therefore
// settlement cost — stay comparable across rows). Every round also
// submits one adequately-priced probe and measures its submit→commit
// settlement time: price-ordered selection, the per-sender quota, and
// tail eviction are what keep that probe from starving. Hostile
// traffic is pre-signed so the measured window holds only admission
// and sealing, never signature generation; senders never re-sign after
// an eviction (a flooder doesn't), so an evicted tail leaves that
// sender nonce-gapped and shed thereafter. Returns the probe
// settlement p50/p99 in ms, the admission-shed fraction of hostile
// attempts, and the pool high-water mark as a fraction of its bound.
func floodScenario(mult, rounds int) (p50ms, p99ms, shed, poolUtil float64) {
	const (
		blockTxs = 64
		poolCap  = 256
		quota    = 32
		hostiles = 8
		warmup   = 2
	)
	key := cryptoutil.MustGenerateKey()
	clk := simclock.NewSim(defaultGenesis)
	node := must(chain.OpenNode(chain.Config{
		Key:                 key,
		Authorities:         []cryptoutil.Address{key.Address()},
		Executor:            parexecExecutor{rounds: 4},
		Clock:               clk,
		GenesisTime:         defaultGenesis,
		MaxTxsPerBlock:      blockTxs,
		MempoolCapacity:     poolCap,
		MaxPendingPerSender: quota,
	}))
	defer node.Close()
	addr := contract.AddressFor("mempool-ablation")

	price := uint64(1) // flood traffic prices itself under everything
	if mult == 0 {
		price = chain.DefaultGasPrice
	}
	// Each round offers exactly mult blocks' worth of hostile traffic
	// (the probe takes the last slot of one block), so mult=1 drains
	// fully every round while mult≥2 is genuine overload.
	volume := max(1, mult)*blockTxs - 1
	total := rounds + warmup
	// Pre-signed nonce strip per sender; the index advances only on
	// admission, so a rejected transaction is retried verbatim later.
	stripLen := total*blockTxs/hostiles + quota + blockTxs
	type sender struct {
		strip []*chain.Tx
		next  int
	}
	crowd := make([]*sender, hostiles)
	for i := range crowd {
		k := cryptoutil.MustGenerateKey()
		s := &sender{strip: make([]*chain.Tx, stripLen)}
		for n := range s.strip {
			s.strip[n] = must(chain.NewTxPriced(k, uint64(n), addr, "rmw",
				parexecArgs{Key: fmt.Sprintf("f%d-%05d", i, n)}, 200_000, price))
		}
		crowd[i] = s
	}
	probeKey := cryptoutil.MustGenerateKey()
	const probePrice = 2 * chain.DefaultGasPrice
	probes := make([]*chain.Tx, total)
	for n := range probes {
		probes[n] = must(chain.NewTxPriced(probeKey, uint64(n), addr, "rmw",
			parexecArgs{Key: "probe"}, 200_000, probePrice))
	}

	var attempts, rejected, poolMax int
	lats := make([]time.Duration, 0, rounds)
	for round := range total {
		for i := range volume {
			s := crowd[i%hostiles]
			if s.next >= len(s.strip) {
				continue // strip exhausted: sender falls silent
			}
			attempts++
			if _, err := node.SubmitTx(s.strip[s.next]); err != nil {
				rejected++
				continue
			}
			s.next++
		}
		poolMax = max(poolMax, node.PendingTxs())
		probe := probes[round]
		start := time.Now()
		must(node.SubmitTx(probe))
		poolMax = max(poolMax, node.PendingTxs())
		clk.Advance(time.Second)
		block := must(node.Seal())
		elapsed := time.Since(start)
		committed := false
		for _, btx := range block.Txs {
			if btx.Hash() == probe.Hash() {
				committed = true
				break
			}
		}
		if !committed {
			panic(fmt.Sprintf("harness: flood probe starved at mult=%d (pool %d pending)",
				mult, node.PendingTxs()))
		}
		if round >= warmup {
			lats = append(lats, elapsed)
		}
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	p50ms = float64(lats[len(lats)/2].Microseconds()) / 1000
	p99ms = float64(lats[len(lats)*99/100].Microseconds()) / 1000
	if attempts > 0 {
		shed = float64(rejected) / float64(attempts)
	}
	poolUtil = float64(poolMax) / poolCap
	return p50ms, p99ms, shed, poolUtil
}

// AblationMempool quantifies the priced-admission layer under overload:
// settlement latency of an adequately-priced probe while hostile
// senders spray cheap traffic at a multiple of the block size. The
// robustness bar: at 10× overload the probe's p99 stays within 25% of
// the unflooded baseline and pool_util_x never exceeds 1.0 (the pool
// bound holds). shed_x and pool_util_x are ratio columns — excluded
// from benchdiff case labels, since the exact shed count depends on
// hash tie-breaks among equal-priced transactions and so varies with
// the generated keys. BenchmarkFloodIngestion covers the admission
// path itself under `go test -bench`.
func (h *Harness) AblationMempool() *Table {
	t := &Table{
		Title:  "Ablation: priced mempool under flood (overload shed at admission)",
		Header: []string{"flood_mult", "rounds", "settle_p50_ms", "settle_p99_ms", "shed_x", "pool_util_x"},
	}
	rounds := 48
	if h.Quick {
		rounds = 12
	}
	for _, mult := range []int{0, 1, 10} {
		p50, p99, shed, util := floodScenario(mult, rounds)
		t.Add(mult, rounds, p50, p99, fmt.Sprintf("%.3f", shed), fmt.Sprintf("%.3f", util))
	}
	return t
}

// AblationObs quantifies the observability subsystem's footprint. The
// per-instrument rows time each hot-path hook in its live and no-op
// (nil-handle) states — the no-op column is what every deployment
// without -debug-addr pays, the live column what a scraped one does.
// The seal-pipeline row is the end-to-end check: the full
// submit→seal→commit path on a metered node versus a bare one, where
// instrument cost must disappear into execution noise. The
// differential tests in internal/chain pin the stronger property that
// metering never changes the blocks themselves.
func (h *Harness) AblationObs() *Table {
	// live_ns leads the latency columns: BenchRows tracks the live
	// instrument cost, with the no-op baseline printed beside it.
	t := &Table{
		Title:  "Ablation: observability (live vs no-op instruments on the hot path)",
		Header: []string{"path", "ops", "live_ns", "noop_ns", "overhead_ns"},
	}
	ops := 2_000_000
	if h.Quick {
		ops = 200_000
	}
	reg := obs.NewRegistry()
	liveCounter := reg.Counter("obs_ablation_counter_total", "ablation workload counter")
	liveHist := reg.Histogram("obs_ablation_hist_ns", "ablation workload histogram")
	var nilCounter *obs.Counter
	var nilHist *obs.Histogram

	perOp := func(f func()) float64 {
		start := time.Now()
		f()
		return float64(time.Since(start).Nanoseconds()) / float64(ops)
	}
	addRow := func(path string, live, noop float64) {
		t.Add(path, ops, live, noop, live-noop)
	}
	addRow("counter-inc",
		perOp(func() {
			for range ops {
				liveCounter.Inc()
			}
		}),
		perOp(func() {
			for range ops {
				nilCounter.Inc()
			}
		}))
	addRow("histogram-observe",
		perOp(func() {
			for i := range ops {
				liveHist.Observe(int64(i))
			}
		}),
		perOp(func() {
			for i := range ops {
				nilHist.Observe(int64(i))
			}
		}))
	addRow("timer-start-stop",
		perOp(func() {
			for range ops {
				tm := liveHist.Start()
				tm.Stop()
			}
		}),
		perOp(func() {
			for range ops {
				tm := nilHist.Start()
				tm.Stop()
			}
		}))

	// End to end: identical workloads through the full node pipeline,
	// metered vs bare, reported as per-transaction cost.
	blocks, txsPerBlock := 10, 200
	if h.Quick {
		blocks, txsPerBlock = 4, 50
	}
	sealRun := func(m *chain.Metrics) float64 {
		key := cryptoutil.MustGenerateKey()
		clk := simclock.NewSim(defaultGenesis)
		node := must(chain.NewNode(chain.Config{
			Key:         key,
			Authorities: []cryptoutil.Address{key.Address()},
			Executor:    parexecExecutor{rounds: 4},
			Clock:       clk,
			GenesisTime: defaultGenesis,
			Metrics:     m,
		}))
		addr := contract.AddressFor("obs-ablation")
		nonce := uint64(0)
		plan := make([][]*chain.Tx, blocks)
		for b := range plan {
			txs := make([]*chain.Tx, txsPerBlock)
			for i := range txs {
				txs[i] = must(chain.NewTx(key, nonce, addr, "rmw",
					parexecArgs{Key: fmt.Sprintf("k%04d", i)}, 200_000))
				nonce++
			}
			plan[b] = txs
		}
		start := time.Now()
		for _, txs := range plan {
			must(node.SubmitBatch(txs))
			clk.Advance(time.Second)
			must(node.Seal())
		}
		return float64(time.Since(start).Nanoseconds()) / float64(blocks*txsPerBlock)
	}
	metered := sealRun(chain.NewMetrics(obs.NewRegistry()))
	bare := sealRun(nil)
	t.Add("seal-pipeline-per-tx", blocks*txsPerBlock, metered, bare, metered-bare)
	return t
}

// ScenarioThroughputFn is installed by internal/scenario's init (the
// scenario engine drives core.Deployment, so a direct call here would be
// an import cycle). Importing repro/internal/scenario — as cmd/ucbench
// and the top-level benchmarks do — wires it up.
var ScenarioThroughputFn func(quick bool) *Table

// AblationScenarioThroughput measures the end-to-end scenario engine's
// step throughput (workload + fault steps + full invariant sweeps) so
// the cost of system-wide checking is a tracked perf number.
func (h *Harness) AblationScenarioThroughput() *Table {
	if ScenarioThroughputFn == nil {
		return &Table{
			Title:  "Ablation: scenario step throughput (engine not linked — import repro/internal/scenario)",
			Header: []string{"steps", "wall_ms", "steps_per_sec"},
		}
	}
	return ScenarioThroughputFn(h.Quick)
}

// ChainStats summarizes ledger shape after a scenario (diagnostic table).
func ChainStats(d *Deployment) *Table {
	t := &Table{
		Title:  "chain statistics",
		Header: []string{"metric", "value"},
	}
	node := d.Nodes[0]
	t.Add("height", node.Height())
	t.Add("state_keys", node.State().Len())
	t.Add("total_gas", node.Costs().TotalSpent())
	t.Add("oracle_in", d.Metrics.In.Load())
	t.Add("oracle_out", d.Metrics.Out.Load())
	t.Add("events_dropped", node.EventsDropped())
	return t
}

// hostScaleOutScenario measures authenticated GET latency against a pod
// population: pods=1 serves the pod directly from a Server; larger
// populations route through one multi-pod Host handler.
func hostScaleOutScenario(pods, requests int) (usPerOp float64) {
	clk := simclock.NewSim(defaultGenesis)
	dir := solid.NewMapDirectory()

	type tenant struct {
		client *solid.Client
		url    string
	}
	tenants := make([]tenant, pods)

	var server *httptest.Server
	if pods == 1 {
		key := cryptoutil.MustGenerateKey()
		owner := solid.WebID("https://owner.example/profile#me")
		dir.Register(owner, key.PublicBytes())
		pod := solid.NewPod(owner, "https://owner.pod")
		server = httptest.NewServer(solid.NewServer(pod, dir, clk, nil))
		must0(pod.Put(owner, "/data/r.bin", "application/octet-stream",
			bytes.Repeat([]byte("x"), 1024), clk.Now()))
		tenants[0] = tenant{solid.NewClient(owner, key, clk), server.URL + "/data/r.bin"}
	} else {
		host := solid.NewHost(dir, clk)
		server = httptest.NewServer(host)
		for i := range pods {
			name := fmt.Sprintf("owner%04d", i)
			key := cryptoutil.MustGenerateKey()
			owner := solid.WebID("https://" + name + ".example/profile#me")
			dir.Register(owner, key.PublicBytes())
			pod := must(host.CreatePod(name, owner, server.URL, nil))
			must0(pod.Put(owner, "/data/r.bin", "application/octet-stream",
				bytes.Repeat([]byte("x"), 1024), clk.Now()))
			tenants[i] = tenant{solid.NewClient(owner, key, clk),
				server.URL + solid.PodRoutePrefix + name + "/data/r.bin"}
		}
	}
	defer server.Close()

	start := time.Now()
	for i := range requests {
		tn := tenants[i%pods]
		_, _, err := tn.client.Get(tn.url)
		must0(err)
	}
	return float64(time.Since(start).Microseconds()) / float64(requests)
}

// AblationHostScaleOut measures the pod-serving layer's scale-out: GET
// latency through one multi-pod Host handler stays flat as the hosted
// pod population grows, and matches serving a single pod directly.
func (h *Harness) AblationHostScaleOut() *Table {
	t := &Table{
		Title:  "Ablation: pod host scale-out (authenticated GET through one handler)",
		Header: []string{"pods", "us_per_request", "vs_single_pod_x"},
	}
	const requests = 300
	single := hostScaleOutScenario(1, requests)
	t.Add(1, single, 1.0)
	for _, pods := range h.sweep([]int{16, 64, 256}) {
		us := hostScaleOutScenario(pods, requests)
		t.Add(pods, us, us/single)
	}
	return t
}

// AblationAuthCache measures the ACL decision cache against the uncached
// ancestor walk at growing resource depth (the deeper the resource under
// its governing ACL, the longer the uncached walk).
func (h *Harness) AblationAuthCache() *Table {
	t := &Table{
		Title:  "Ablation: ACL decision cache vs uncached ancestor walk",
		Header: []string{"depth", "uncached_ns", "cached_ns", "speedup"},
	}
	reader := solid.WebID("https://reader.example/profile#me")
	run := func(depth int, cached bool) float64 {
		owner := solid.WebID("https://owner.example/profile#me")
		pod := solid.NewPod(owner, "https://owner.pod")
		pod.SetAuthCacheEnabled(cached)
		root := solid.NewACL(owner, "/")
		root.Grant("reader", []solid.WebID{reader}, "/", true, solid.ModeRead)
		must0(pod.SetACL(owner, "/", root))
		path := ""
		for i := range depth {
			path += fmt.Sprintf("/d%d", i)
		}
		path += "/r.bin"
		must0(pod.Put(owner, path, "application/octet-stream", []byte("x"), defaultGenesis))
		const ops = 200_000
		start := time.Now()
		for range ops {
			must0(pod.Authorize(reader, path, solid.ModeRead))
		}
		return float64(time.Since(start).Nanoseconds()) / ops
	}
	for _, depth := range h.sweep([]int{2, 4, 8, 16}) {
		uncached := run(depth, false)
		cached := run(depth, true)
		t.Add(depth, uncached, cached, uncached/cached)
	}
	return t
}
