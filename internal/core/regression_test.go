package core

import (
	"context"
	"testing"
	"time"

	"repro/internal/policy"
)

// Regression tests for cross-layer bugs shaken out by the scenario
// engine (internal/scenario) during its development.

// TestGrantDoesNotRevokeEarlierConsumers: GrantAccess used to install a
// fresh ACL containing only the newest consumer, so granting consumer B
// silently revoked consumer A's read access — A's later (paid) fetch got
// 403. The scenario engine's acl-isolation invariant caught it; grants
// must merge into the resource's ACL.
func TestGrantDoesNotRevokeEarlierConsumers(t *testing.T) {
	d, err := NewDeployment(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	ctx := context.Background()

	owner, iri := ownerWithResource(d, "owner", 512, nil)
	a, err := d.NewConsumer("aaa", policy.PurposeAny)
	if err != nil {
		t.Fatal(err)
	}
	b, err := d.NewConsumer("bbb", policy.PurposeAny)
	if err != nil {
		t.Fatal(err)
	}
	if err := owner.Grant(ctx, a, "/data/r.bin", policy.PurposeAny); err != nil {
		t.Fatal(err)
	}
	if err := owner.Grant(ctx, b, "/data/r.bin", policy.PurposeAny); err != nil {
		t.Fatal(err)
	}

	// Both consumers must hold effective read access after both grants.
	if err := a.Access(ctx, iri); err != nil {
		t.Fatalf("first-granted consumer lost access after a later grant: %v", err)
	}
	if err := b.Access(ctx, iri); err != nil {
		t.Fatalf("second-granted consumer has no access: %v", err)
	}
	// A repeated grant of the same consumer must stay idempotent at the
	// ACL layer (no duplicate authorizations piling up).
	pod := owner.Manager.Pod()
	acl, err := pod.GetACL(owner.WebID, "/data/r.bin")
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]int{}
	for _, auth := range acl.Authorizations {
		seen[auth.ID]++
		if seen[auth.ID] > 1 {
			t.Fatalf("duplicate authorization %q in merged ACL", auth.ID)
		}
	}
}

// TestBackendSurvivesNodeZeroFailure: the deployment backend used to pin
// node 0 for receipt waits, queries, and nonce reads. With node 0 failed
// the cluster still seals (clique fallback), but every client call hung
// forever on node 0's frozen ledger — a deadlock the scenario engine's
// node-restart faults exposed. The backend must follow a live node.
func TestBackendSurvivesNodeZeroFailure(t *testing.T) {
	d, err := NewDeployment(Config{Validators: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	owner, err := d.NewOwner("owner")
	if err != nil {
		t.Fatal(err)
	}
	if err := d.FailValidator(0); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := owner.InitializePod(ctx, nil); err != nil {
		t.Fatalf("on-chain call with node 0 down: %v", err)
	}

	// Node 0 recovers and syncs the blocks it missed.
	synced, err := d.RecoverValidator(0)
	if err != nil {
		t.Fatal(err)
	}
	if synced == 0 {
		t.Fatal("recovered node 0 synced no blocks")
	}
	if d.Nodes[0].Head().Hash() != d.Nodes[1].Head().Hash() {
		t.Fatal("node 0 disagrees with the cluster after recovery")
	}
}

// TestTakeSnapshotTracksLiveness: snapshots report only live heads and
// reflect chain/market progress.
func TestTakeSnapshotTracksLiveness(t *testing.T) {
	d, err := NewDeployment(Config{Validators: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	before := d.TakeSnapshot()
	if len(before.LiveHeads) != 2 {
		t.Fatalf("live heads = %d, want 2", len(before.LiveHeads))
	}

	owner, err := d.NewOwner("owner")
	if err != nil {
		t.Fatal(err)
	}
	if err := owner.InitializePod(context.Background(), nil); err != nil {
		t.Fatal(err)
	}
	if err := d.FailValidator(1); err != nil {
		t.Fatal(err)
	}

	after := d.TakeSnapshot()
	if after.Height <= before.Height {
		t.Fatalf("height did not advance: %d -> %d", before.Height, after.Height)
	}
	if after.TotalGas <= before.TotalGas {
		t.Fatalf("gas did not advance: %d -> %d", before.TotalGas, after.TotalGas)
	}
	if len(after.LiveHeads) != 1 {
		t.Fatalf("live heads after failure = %d, want 1", len(after.LiveHeads))
	}
	if _, ok := after.LiveHeads[1]; ok {
		t.Fatal("failed validator 1 still listed among live heads")
	}
}

// TestFailValidatorRefusesLastLiveNode: taking down the last live
// validator can only deadlock clients, so the hook must refuse.
func TestFailValidatorRefusesLastLiveNode(t *testing.T) {
	d, err := NewDeployment(Config{Validators: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if err := d.FailValidator(1); err != nil {
		t.Fatal(err)
	}
	if err := d.FailValidator(0); err == nil {
		t.Fatal("failing the last live validator was allowed")
	}
	if d.ValidatorDown(0) {
		t.Fatal("refused failure still marked the validator down")
	}
}
