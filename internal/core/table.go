package core

import (
	"fmt"
	"strings"
)

// Table is a printable experiment result: the harness emits one Table per
// paper artifact (Fig. 2 process or Section V property).
type Table struct {
	// Title names the experiment (e.g. "E5 policy modification").
	Title string
	// Header labels the columns.
	Header []string
	// Rows holds the measurements, already formatted.
	Rows [][]string
}

// Add appends a row, formatting each cell with %v.
func (t *Table) Add(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}
