package core

import (
	"fmt"
	"strconv"
	"strings"
)

// Table is a printable experiment result: the harness emits one Table per
// paper artifact (Fig. 2 process or Section V property).
type Table struct {
	// Title names the experiment (e.g. "E5 policy modification").
	Title string
	// Header labels the columns.
	Header []string
	// Rows holds the measurements, already formatted.
	Rows [][]string
}

// Add appends a row, formatting each cell with %v.
func (t *Table) Add(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// BenchRow is one machine-readable measurement emitted by
// `ucbench -json`: the perf-trajectory schema tracked across PRs in
// BENCH_*.json files.
type BenchRow struct {
	// Exp is the experiment table's selector name (e.g. "commitpath").
	Exp string `json:"exp"`
	// Case identifies the row within the table (its label cells joined
	// with "/").
	Case string `json:"case"`
	// NsOp is the row's primary latency measurement in nanoseconds
	// (converted from the table's _ns/_us/_ms column; 0 if the table has
	// no latency column).
	NsOp float64 `json:"ns_op"`
	// AllocsOp and BytesOp carry allocation metrics when the table
	// reports them, else 0.
	AllocsOp float64 `json:"allocs_op"`
	BytesOp  float64 `json:"bytes_op"`
}

// benchTimeScale returns the to-nanoseconds factor for a latency column
// header — one whose underscore-separated tokens include a time unit
// (ns/us/ms), e.g. "avg_latency_us" or "baseline_us_per_op" — or 0 for
// non-latency headers. Headers mentioning "interval" are swept inputs
// (the configured block interval), never measurements.
func benchTimeScale(header string) float64 {
	h := strings.ToLower(header)
	if strings.Contains(h, "interval") {
		return 0
	}
	for _, tok := range strings.Split(h, "_") {
		switch tok {
		case "ns":
			return 1
		case "us":
			return 1e3
		case "ms":
			return 1e6
		}
	}
	return 0
}

// hasRatioToken reports a derived ratio column ("overhead_x",
// "vs_single_pod_x"): excluded from case labels (run-to-run noise would
// make (exp, case) keys unmatchable across PRs) but not a metric.
func hasRatioToken(h string) bool {
	for _, tok := range strings.Split(h, "_") {
		if tok == "x" {
			return true
		}
	}
	return false
}

// BenchRows flattens the table into one BenchRow per table row, so
// every printed measurement also exists machine-readably. The first
// latency-unit header supplies ns_op; the benchmark-standard names
// "allocs"/"allocs_op" and "bytes"/"bytes_op" supply allocs_op/bytes_op
// (workload-size labels like "size_bytes" stay labels); every remaining
// non-derived column becomes part of the case label.
func (t *Table) BenchRows(exp string) []BenchRow {
	timeCol, allocsCol, bytesCol := -1, -1, -1
	timeScale := 0.0
	derived := make(map[int]bool) // metric columns: excluded from case labels
	for i, h := range t.Header {
		lh := strings.ToLower(h)
		if scale := benchTimeScale(h); scale > 0 {
			derived[i] = true
			if timeCol < 0 {
				timeCol, timeScale = i, scale
			}
			continue
		}
		switch {
		case lh == "allocs" || lh == "allocs_op":
			derived[i] = true
			if allocsCol < 0 {
				allocsCol = i
			}
		case lh == "bytes" || lh == "bytes_op":
			derived[i] = true
			if bytesCol < 0 {
				bytesCol = i
			}
		case strings.Contains(lh, "speedup") || strings.Contains(lh, "per_sec") || hasRatioToken(lh):
			derived[i] = true // rate/ratio columns are derived, not labels
		}
	}
	parse := func(row []string, col int, scale float64) float64 {
		if col < 0 || col >= len(row) {
			return 0
		}
		v, err := strconv.ParseFloat(row[col], 64)
		if err != nil {
			return 0 // non-numeric cells (e.g. "-") carry no measurement
		}
		return v * scale
	}
	rows := make([]BenchRow, 0, len(t.Rows))
	for _, row := range t.Rows {
		labels := make([]string, 0, len(row))
		for i, cell := range row {
			if derived[i] {
				continue
			}
			labels = append(labels, cell)
		}
		rows = append(rows, BenchRow{
			Exp:      exp,
			Case:     strings.Join(labels, "/"),
			NsOp:     parse(row, timeCol, timeScale),
			AllocsOp: parse(row, allocsCol, 1),
			BytesOp:  parse(row, bytesCol, 1),
		})
	}
	return rows
}
