package core

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"time"

	"repro/internal/chain"
)

// RetryPolicy shapes the capped, jittered exponential backoff used when
// a submission surface answers backpressure — the in-process network
// backend on chain.ErrPoolFull/ErrQuotaExceeded, and the HTTP TxClient
// on 429 (where a Retry-After hint takes precedence over the computed
// delay).
type RetryPolicy struct {
	// MaxAttempts is the total number of tries (default 4; 1 disables
	// retrying).
	MaxAttempts int
	// BaseDelay is the first backoff step (default 10ms); attempt n waits
	// BaseDelay·2ⁿ, jittered ±50%.
	BaseDelay time.Duration
	// MaxDelay caps the backoff (default 1s).
	MaxDelay time.Duration
}

// withDefaults fills zero fields with the documented defaults.
func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 4
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 10 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = time.Second
	}
	return p
}

// delay computes the pause before retry number attempt (0-based): capped
// exponential backoff with ±50% jitter, overridden upward by an explicit
// server hint (Retry-After).
func (p RetryPolicy) delay(attempt int, hint time.Duration) time.Duration {
	d := p.BaseDelay << attempt
	if d > p.MaxDelay || d <= 0 {
		d = p.MaxDelay
	}
	// Jitter in [0.5d, 1.5d) de-synchronizes clients that all got
	// backpressured by the same full pool.
	d = d/2 + time.Duration(rand.Int63n(int64(d)))
	if hint > d {
		d = hint
	}
	if d > p.MaxDelay {
		d = p.MaxDelay
	}
	return d
}

// retryable reports whether err is backpressure worth retrying: a full
// pool drains as blocks seal, and a quota frees as the sender's pending
// transactions commit. Everything else (bad nonce, bad signature,
// underpriced replacement) is deterministic and retried never.
func retryable(err error) bool {
	return errors.Is(err, chain.ErrPoolFull) || errors.Is(err, chain.ErrQuotaExceeded)
}

// TxVerdictWire is one line of the de-node streaming ingestion response
// (`POST /txs/stream`, NDJSON): the transaction hash, whether it was
// admitted, the admission error otherwise, and whether retrying later
// can succeed (backpressure) or not (deterministic rejection).
type TxVerdictWire struct {
	Hash      string `json:"hash"`
	Ok        bool   `json:"ok"`
	Error     string `json:"error,omitempty"`
	Retryable bool   `json:"retryable,omitempty"`
}

// TxClient is a small retrying submission client for the de-node HTTP
// API: it posts signed transaction batches to /txs and backs off on 429,
// honoring the server's Retry-After hint under the policy's cap.
type TxClient struct {
	// BaseURL is the de-node API root, e.g. "http://127.0.0.1:8545".
	BaseURL string
	// HTTP is the underlying client (default http.DefaultClient).
	HTTP *http.Client
	// Policy shapes the backoff (zero value = defaults).
	Policy RetryPolicy
}

// ErrBackpressure is returned by TxClient.Submit when the node still
// answers 429 after the policy's attempts are exhausted.
var ErrBackpressure = errors.New("core: node backpressured every attempt")

// Submit posts the batch to /txs, retrying on 429 with capped jittered
// backoff (Retry-After honored). It returns the number of transactions
// the node accepted.
func (c *TxClient) Submit(ctx context.Context, txs []*chain.Tx) (int, error) {
	body, err := json.Marshal(txs)
	if err != nil {
		return 0, err
	}
	hc := c.HTTP
	if hc == nil {
		hc = http.DefaultClient
	}
	p := c.Policy.withDefaults()
	for attempt := 0; ; attempt++ {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+"/txs", bytes.NewReader(body))
		if err != nil {
			return 0, err
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := hc.Do(req)
		if err != nil {
			return 0, err
		}
		out, hint, err := decodeSubmitResponse(resp)
		if err == nil {
			return out, nil
		}
		if !errors.Is(err, ErrBackpressure) || attempt >= p.MaxAttempts-1 {
			return 0, err
		}
		select {
		case <-time.After(p.delay(attempt, hint)):
		case <-ctx.Done():
			return 0, ctx.Err()
		}
	}
}

// decodeSubmitResponse consumes one /txs response: the accepted count on
// 200, ErrBackpressure plus the Retry-After hint on 429, and a verbatim
// error otherwise.
func decodeSubmitResponse(resp *http.Response) (accepted int, hint time.Duration, err error) {
	defer resp.Body.Close()
	raw, readErr := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if readErr != nil {
		return 0, 0, readErr
	}
	switch resp.StatusCode {
	case http.StatusOK:
		var out struct {
			Accepted int `json:"accepted"`
		}
		if err := json.Unmarshal(raw, &out); err != nil {
			return 0, 0, fmt.Errorf("core: decode /txs response: %w", err)
		}
		return out.Accepted, 0, nil
	case http.StatusTooManyRequests:
		if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && secs > 0 {
			hint = time.Duration(secs) * time.Second
		}
		return 0, hint, fmt.Errorf("%w: %s", ErrBackpressure, bytes.TrimSpace(raw))
	default:
		return 0, 0, fmt.Errorf("core: /txs returned %s: %s", resp.Status, bytes.TrimSpace(raw))
	}
}
