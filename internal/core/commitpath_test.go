package core

import (
	"strconv"
	"testing"
)

// TestAblationCommitPathTable: the commit-path ablation produces one row
// per swept ledger size with positive latencies for both paths, and its
// machine-readable projection preserves every row.
func TestAblationCommitPathTable(t *testing.T) {
	h := &Harness{Quick: true}
	tbl := h.AblationCommitPath()
	if len(tbl.Rows) == 0 {
		t.Fatal("empty table")
	}
	for i, row := range tbl.Rows {
		if len(row) != len(tbl.Header) {
			t.Fatalf("row %d has %d cells, header %d", i, len(row), len(tbl.Header))
		}
		ledger, err := strconv.Atoi(row[0])
		if err != nil || ledger <= 0 {
			t.Fatalf("row %d ledger = %q", i, row[0])
		}
		overlayUs, err := strconv.ParseFloat(row[2], 64)
		if err != nil || overlayUs <= 0 {
			t.Fatalf("row %d overlay_us = %q", i, row[2])
		}
		cloneUs, err := strconv.ParseFloat(row[3], 64)
		if err != nil || cloneUs <= 0 {
			t.Fatalf("row %d clone_us = %q", i, row[3])
		}
	}

	rows := tbl.BenchRows("commitpath")
	if len(rows) != len(tbl.Rows) {
		t.Fatalf("%d bench rows for %d table rows", len(rows), len(tbl.Rows))
	}
	for i, r := range rows {
		if r.Exp != "commitpath" || r.Case == "" {
			t.Fatalf("bench row = %+v", r)
		}
		if r.NsOp <= 0 {
			t.Fatalf("bench row lost its latency: %+v", r)
		}
		// The tracked ns_op must be the LIVE overlay path (column 2),
		// not the deprecated clone baseline: a commit-latency regression
		// has to show in the perf trajectory.
		overlayUs, err := strconv.ParseFloat(tbl.Rows[i][2], 64)
		if err != nil {
			t.Fatal(err)
		}
		if r.NsOp != overlayUs*1e3 {
			t.Fatalf("ns_op = %v, want overlay_us %v in ns", r.NsOp, overlayUs*1e3)
		}
	}
}

// TestTableBenchRows pins the header-driven projection rules: unit
// tokens convert to nanoseconds, benchmark-standard alloc/bytes columns
// map to their fields, derived columns (rates, ratios) stay out of the
// case label, and non-numeric cells carry no measurement.
func TestTableBenchRows(t *testing.T) {
	tbl := &Table{
		Header: []string{"mode", "n", "ingest_ms", "read_us", "allocs_op", "bytes_op", "speedup", "steps_per_sec"},
	}
	tbl.Add("wal", 512, 12.5, 3.0, 42, 1024, 7.7, 99.0)
	tbl.Add("memory", 512, "-", "-", "-", "-", "-", "-")

	rows := tbl.BenchRows("durability")
	if len(rows) != 2 {
		t.Fatalf("rows = %+v", rows)
	}
	r := rows[0]
	if r.Exp != "durability" || r.Case != "wal/512" {
		t.Fatalf("row 0 = %+v", r)
	}
	if r.NsOp != 12.5*1e6 { // first latency column (ingest_ms) wins, in ns
		t.Fatalf("ns_op = %v", r.NsOp)
	}
	if r.AllocsOp != 42 || r.BytesOp != 1024 {
		t.Fatalf("alloc/bytes = %v/%v", r.AllocsOp, r.BytesOp)
	}
	r = rows[1]
	if r.Case != "memory/512" || r.NsOp != 0 || r.AllocsOp != 0 || r.BytesOp != 0 {
		t.Fatalf("dash row = %+v", r)
	}

	// A table with no latency column still covers every row (ns_op 0).
	plain := &Table{Header: []string{"metric", "value"}}
	plain.Add("height", 7)
	rows = plain.BenchRows("stats")
	if len(rows) != 1 || rows[0].Case != "height/7" || rows[0].NsOp != 0 {
		t.Fatalf("plain rows = %+v", rows)
	}

	// E4-shaped: a workload-size label with a unit-like name stays a
	// label — it must key the case, never masquerade as bytes_op.
	e4 := &Table{Header: []string{"size_bytes", "access_latency_ms", "fetch_only_ms"}}
	e4.Add(4096, 1.5, 1.0)
	rows = e4.BenchRows("e4")
	if rows[0].Case != "4096" || rows[0].NsOp != 1.5*1e6 || rows[0].BytesOp != 0 {
		t.Fatalf("e4 row = %+v", rows[0])
	}

	// E10-shaped: mid-name unit tokens convert, and the overhead ratio
	// is derived (kept out of the run-to-run case key).
	e10 := &Table{Header: []string{"accesses", "baseline_us_per_op", "usage_control_us_per_op", "overhead_x"}}
	e10.Add(100, 12.34, 15.67, 1.27)
	rows = e10.BenchRows("e10")
	if rows[0].Case != "100" || rows[0].NsOp != 12.34*1e3 {
		t.Fatalf("e10 row = %+v", rows[0])
	}

	// Blockinterval-shaped: a swept interval input keeps labelling the
	// case; the simulated propagation time is the measurement.
	bi := &Table{Header: []string{"interval_ms", "propagation_sim_ms"}}
	bi.Add(200, 300.0)
	rows = bi.BenchRows("blockinterval")
	if rows[0].Case != "200" || rows[0].NsOp != 300.0*1e6 {
		t.Fatalf("blockinterval row = %+v", rows[0])
	}
}
