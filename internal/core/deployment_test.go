package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/distexchange"
	"repro/internal/policy"
	"repro/internal/tee"
)

func newDeployment(t *testing.T, cfg Config) *Deployment {
	t.Helper()
	d, err := NewDeployment(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Close)
	return d
}

// aliceAndBob provisions the motivating scenario's principals: Alice owns
// a browsing dataset (30-day retention), Bob owns a medical dataset
// (medical purposes only); each is also a consumer of the other's data.
type scenario struct {
	d *Deployment

	alice      *Owner
	bob        *Owner
	aliceAsCon *Consumer // Alice the researcher (medical-research purpose)
	bobAsCon   *Consumer // Bob the web analyst (web-analytics purpose)

	browsingIRI string
	medicalIRI  string
}

func newScenario(t *testing.T, cfg Config) *scenario {
	t.Helper()
	d := newDeployment(t, cfg)
	ctx := context.Background()

	alice, err := d.NewOwner("alice")
	if err != nil {
		t.Fatal(err)
	}
	bob, err := d.NewOwner("bob")
	if err != nil {
		t.Fatal(err)
	}
	if err := alice.InitializePod(ctx, nil); err != nil {
		t.Fatal(err)
	}
	if err := bob.InitializePod(ctx, nil); err != nil {
		t.Fatal(err)
	}

	// Alice's internet-browsing dataset: delete one month after storage.
	if err := alice.AddResource("/web/browsing.csv", "text/csv", []byte("url,ts\nexample.org,1")); err != nil {
		t.Fatal(err)
	}
	browsingPol := alice.NewPolicy("/web/browsing.csv")
	browsingPol.MaxRetention = 30 * 24 * time.Hour
	browsingIRI, err := alice.Publish(ctx, "/web/browsing.csv", "internet browsing dataset", browsingPol)
	if err != nil {
		t.Fatal(err)
	}

	// Bob's medical dataset: medical purposes only.
	if err := bob.AddResource("/medical/ds1.ttl", "text/turtle", []byte("@prefix ex: <http://e/> .\nex:p ex:hasCondition ex:c .")); err != nil {
		t.Fatal(err)
	}
	medicalPol := bob.NewPolicy("/medical/ds1.ttl")
	medicalPol.AllowedPurposes = []policy.Purpose{policy.PurposeMedicalResearch}
	medicalIRI, err := bob.Publish(ctx, "/medical/ds1.ttl", "medical dataset", medicalPol)
	if err != nil {
		t.Fatal(err)
	}

	aliceAsCon, err := d.NewConsumer("alice-researcher", policy.PurposeMedicalResearch)
	if err != nil {
		t.Fatal(err)
	}
	bobAsCon, err := d.NewConsumer("bob-analyst", policy.PurposeWebAnalytics)
	if err != nil {
		t.Fatal(err)
	}

	return &scenario{
		d: d, alice: alice, bob: bob,
		aliceAsCon: aliceAsCon, bobAsCon: bobAsCon,
		browsingIRI: browsingIRI, medicalIRI: medicalIRI,
	}
}

func TestProcess1PodInitiation(t *testing.T) {
	d := newDeployment(t, Config{})
	ctx := context.Background()
	alice, err := d.NewOwner("alice")
	if err != nil {
		t.Fatal(err)
	}
	def := policy.New(alice.URL()+"/", string(alice.WebID), d.Clock.Now())
	if err := alice.InitializePod(ctx, def); err != nil {
		t.Fatal(err)
	}
	rec, err := alice.Manager.DE().GetPod(string(alice.WebID))
	if err != nil {
		t.Fatal(err)
	}
	if rec.Location != alice.URL()+"/" || rec.DefaultPolicy == nil {
		t.Fatalf("pod record = %+v", rec)
	}
}

func TestProcess2And3ResourceInitiationAndIndexing(t *testing.T) {
	s := newScenario(t, Config{})

	// Alice (as researcher) indexes Bob's medical resource via pull-out.
	rec, err := s.aliceAsCon.Index(s.medicalIRI)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Location != s.medicalIRI {
		t.Fatalf("location = %s", rec.Location)
	}
	if rec.Policy == nil || !rec.Policy.PermitsPurpose(policy.PurposeMedicalResearch) {
		t.Fatalf("policy = %+v", rec.Policy)
	}
	// The catalog lists both resources.
	catalog, err := s.aliceAsCon.ListCatalog()
	if err != nil {
		t.Fatal(err)
	}
	if len(catalog) != 2 {
		t.Fatalf("catalog = %d entries", len(catalog))
	}
}

func TestProcess4ResourceAccess(t *testing.T) {
	s := newScenario(t, Config{})
	ctx := context.Background()

	// Without a grant, access fails at the pod (no ACL).
	if err := s.aliceAsCon.Access(ctx, s.medicalIRI); err == nil {
		t.Fatal("access without grant succeeded")
	}

	// Bob grants Alice's researcher identity.
	if err := s.bob.Grant(ctx, s.aliceAsCon, "/medical/ds1.ttl", policy.PurposeMedicalResearch); err != nil {
		t.Fatal(err)
	}
	if err := s.aliceAsCon.Access(ctx, s.medicalIRI); err != nil {
		t.Fatal(err)
	}

	// The copy lives in the TEE and is usable under the policy.
	data, err := s.aliceAsCon.Use(s.medicalIRI, policy.ActionUse)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Fatal("empty resource data")
	}

	// Retrieval is confirmed on-chain.
	grants, err := s.bob.Manager.DE().GetGrants(s.medicalIRI)
	if err != nil {
		t.Fatal(err)
	}
	if len(grants) != 1 || grants[0].RetrievedAt.IsZero() {
		t.Fatalf("grants = %+v", grants)
	}

	// The market collected two fees: the fee is paid before the pod is
	// contacted (the paper's order: get a certificate proving payment,
	// then present it), so the denied first attempt also paid.
	if s.d.Market.Payments() != 2 {
		t.Fatalf("payments = %d", s.d.Market.Payments())
	}
}

func TestProcess5PolicyModificationAliceScenario(t *testing.T) {
	s := newScenario(t, Config{})
	ctx := context.Background()

	// Bob the analyst retrieves Alice's browsing data.
	if err := s.alice.Grant(ctx, s.bobAsCon, "/web/browsing.csv", policy.PurposeWebAnalytics); err != nil {
		t.Fatal(err)
	}
	if err := s.bobAsCon.Access(ctx, s.browsingIRI); err != nil {
		t.Fatal(err)
	}
	if !s.bobAsCon.App.Holds(s.browsingIRI) {
		t.Fatal("copy not in TEE")
	}

	// Two days later Alice shortens retention to one week.
	s.d.Clock.Advance(2 * 24 * time.Hour)
	v2 := s.alice.NewPolicy("/web/browsing.csv")
	v2.Version = 2
	v2.MaxRetention = 7 * 24 * time.Hour
	if err := s.alice.ModifyPolicy(ctx, "/web/browsing.csv", v2); err != nil {
		t.Fatal(err)
	}
	// The push-out oracle delivers the update to Bob's device.
	if err := s.bobAsCon.WaitPolicyVersion(s.browsingIRI, 2, 5*time.Second); err != nil {
		t.Fatal(err)
	}

	// Five more days (day 7 after retrieval): the copy is erased.
	s.d.Clock.Advance(5*24*time.Hour + time.Minute)
	if s.bobAsCon.App.Holds(s.browsingIRI) {
		t.Fatal("copy survived the shortened retention")
	}
	if _, err := s.bobAsCon.Use(s.browsingIRI, policy.ActionUse); !errors.Is(err, tee.ErrDeleted) {
		t.Fatalf("use after erasure: %v", err)
	}
}

func TestProcess5PolicyModificationBobScenario(t *testing.T) {
	s := newScenario(t, Config{})
	ctx := context.Background()

	// Alice the researcher (medical-research AND academic context in the
	// paper; here her declared purpose is medical-research) retrieves
	// Bob's data.
	if err := s.bob.Grant(ctx, s.aliceAsCon, "/medical/ds1.ttl", policy.PurposeMedicalResearch); err != nil {
		t.Fatal(err)
	}
	if err := s.aliceAsCon.Access(ctx, s.medicalIRI); err != nil {
		t.Fatal(err)
	}

	// Bob changes the allowed purpose to academic only.
	v2 := s.bob.NewPolicy("/medical/ds1.ttl")
	v2.Version = 2
	v2.AllowedPurposes = []policy.Purpose{policy.PurposeAcademic}
	if err := s.bob.ModifyPolicy(ctx, "/medical/ds1.ttl", v2); err != nil {
		t.Fatal(err)
	}
	if err := s.aliceAsCon.WaitPolicyVersion(s.medicalIRI, 2, 5*time.Second); err != nil {
		t.Fatal(err)
	}

	// Alice's researcher app (medical-research) has its use revoked...
	if _, err := s.aliceAsCon.Use(s.medicalIRI, policy.ActionUse); !errors.Is(err, tee.ErrUseRevoked) {
		t.Fatalf("use after purpose narrowing: %v", err)
	}
	// ...but the copy itself remains (no retention obligation).
	if !s.aliceAsCon.App.Holds(s.medicalIRI) {
		t.Fatal("copy deleted on purpose change")
	}
}

func TestProcess5PolicyUpdateUnaffectedHolder(t *testing.T) {
	// The paper: "As Alice is using an application in the medical research
	// domain for a university hospital, changes do not affect her access
	// grants." Model: an academic-purpose consumer keeps using Bob's data
	// after he narrows the policy to academic.
	d := newDeployment(t, Config{})
	ctx := context.Background()
	bob, err := d.NewOwner("bob")
	if err != nil {
		t.Fatal(err)
	}
	if err := bob.InitializePod(ctx, nil); err != nil {
		t.Fatal(err)
	}
	if err := bob.AddResource("/medical/ds1.ttl", "text/turtle", []byte("x")); err != nil {
		t.Fatal(err)
	}
	pol := bob.NewPolicy("/medical/ds1.ttl")
	pol.AllowedPurposes = []policy.Purpose{policy.PurposeMedicalResearch, policy.PurposeAcademic}
	iri, err := bob.Publish(ctx, "/medical/ds1.ttl", "", pol)
	if err != nil {
		t.Fatal(err)
	}
	academic, err := d.NewConsumer("uni-hospital", policy.PurposeAcademic)
	if err != nil {
		t.Fatal(err)
	}
	if err := bob.Grant(ctx, academic, "/medical/ds1.ttl", policy.PurposeAcademic); err != nil {
		t.Fatal(err)
	}
	if err := academic.Access(ctx, iri); err != nil {
		t.Fatal(err)
	}
	v2 := bob.NewPolicy("/medical/ds1.ttl")
	v2.Version = 2
	v2.AllowedPurposes = []policy.Purpose{policy.PurposeAcademic}
	if err := bob.ModifyPolicy(ctx, "/medical/ds1.ttl", v2); err != nil {
		t.Fatal(err)
	}
	if err := academic.WaitPolicyVersion(iri, 2, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	if _, err := academic.Use(iri, policy.ActionUse); err != nil {
		t.Fatalf("unaffected holder blocked: %v", err)
	}
}

func TestProcess6PolicyMonitoringCompliant(t *testing.T) {
	s := newScenario(t, Config{})
	ctx := context.Background()

	if err := s.alice.Grant(ctx, s.bobAsCon, "/web/browsing.csv", policy.PurposeWebAnalytics); err != nil {
		t.Fatal(err)
	}
	if err := s.bobAsCon.Access(ctx, s.browsingIRI); err != nil {
		t.Fatal(err)
	}
	if _, err := s.bobAsCon.Use(s.browsingIRI, policy.ActionUse); err != nil {
		t.Fatal(err)
	}

	evidence, violations, err := s.alice.Monitor(ctx, "/web/browsing.csv")
	if err != nil {
		t.Fatal(err)
	}
	if len(evidence) != 1 {
		t.Fatalf("evidence = %+v", evidence)
	}
	ev := evidence[0].Evidence
	if !ev.StillStored || ev.UseCount != 1 || ev.Device != s.bobAsCon.Device.Address() {
		t.Fatalf("evidence content = %+v", ev)
	}
	if len(violations) != 0 {
		t.Fatalf("violations = %+v", violations)
	}
}

func TestProcess6MonitoringDetectsRogueDevice(t *testing.T) {
	s := newScenario(t, Config{})
	ctx := context.Background()

	if err := s.alice.Grant(ctx, s.bobAsCon, "/web/browsing.csv", policy.PurposeWebAnalytics); err != nil {
		t.Fatal(err)
	}
	if err := s.bobAsCon.Access(ctx, s.browsingIRI); err != nil {
		t.Fatal(err)
	}
	// Bob's device stops enforcing deletion; 31 days pass (past the
	// 30-day retention).
	s.bobAsCon.App.SetRogue(true)
	s.d.Clock.Advance(31 * 24 * time.Hour)
	if !s.bobAsCon.App.Holds(s.browsingIRI) {
		t.Fatal("rogue device deleted anyway")
	}

	_, violations, err := s.alice.Monitor(ctx, "/web/browsing.csv")
	if err != nil {
		t.Fatal(err)
	}
	if len(violations) != 1 || violations[0].Kind != distexchange.ViolationRetention {
		t.Fatalf("violations = %+v", violations)
	}
	if violations[0].Device != s.bobAsCon.Device.Address() {
		t.Fatalf("violation device = %s", violations[0].Device)
	}
}

func TestProcess6MonitoringDetectsUnresponsiveDevice(t *testing.T) {
	s := newScenario(t, Config{})
	ctx := context.Background()

	if err := s.alice.Grant(ctx, s.bobAsCon, "/web/browsing.csv", policy.PurposeWebAnalytics); err != nil {
		t.Fatal(err)
	}
	if err := s.bobAsCon.Access(ctx, s.browsingIRI); err != nil {
		t.Fatal(err)
	}
	// The device goes offline: the pull-in oracle can no longer reach it.
	s.d.PullIn().UnregisterSource(s.bobAsCon.Device.Address())
	s.d.grace = 100 * time.Millisecond // don't wait long for the silent device

	_, violations, err := s.alice.Monitor(ctx, "/web/browsing.csv")
	if err != nil {
		t.Fatal(err)
	}
	if len(violations) != 1 || violations[0].Kind != distexchange.ViolationUnresponsive {
		t.Fatalf("violations = %+v", violations)
	}
}

// TestFullMotivatingScenario walks Section II end to end with both
// principals on a 3-validator network.
func TestFullMotivatingScenario(t *testing.T) {
	s := newScenario(t, Config{Validators: 3})
	ctx := context.Background()

	// Cross-grants: Alice gets Bob's medical data, Bob gets Alice's
	// browsing data.
	if err := s.bob.Grant(ctx, s.aliceAsCon, "/medical/ds1.ttl", policy.PurposeMedicalResearch); err != nil {
		t.Fatal(err)
	}
	if err := s.alice.Grant(ctx, s.bobAsCon, "/web/browsing.csv", policy.PurposeWebAnalytics); err != nil {
		t.Fatal(err)
	}
	if err := s.aliceAsCon.Access(ctx, s.medicalIRI); err != nil {
		t.Fatal(err)
	}
	if err := s.bobAsCon.Access(ctx, s.browsingIRI); err != nil {
		t.Fatal(err)
	}

	// Both use their copies locally.
	if _, err := s.aliceAsCon.Use(s.medicalIRI, policy.ActionUse); err != nil {
		t.Fatal(err)
	}
	if _, err := s.bobAsCon.Use(s.browsingIRI, policy.ActionUse); err != nil {
		t.Fatal(err)
	}

	// Alice checks compliance of her dataset; Bob's device provides
	// evidence.
	evidence, violations, err := s.alice.Monitor(ctx, "/web/browsing.csv")
	if err != nil {
		t.Fatal(err)
	}
	if len(evidence) != 1 || len(violations) != 0 {
		t.Fatalf("monitor: evidence=%d violations=%d", len(evidence), len(violations))
	}

	// After two days, Alice shortens retention to a week; Bob modifies
	// his policy to academic.
	s.d.Clock.Advance(48 * time.Hour)
	aliceV2 := s.alice.NewPolicy("/web/browsing.csv")
	aliceV2.Version = 2
	aliceV2.MaxRetention = 7 * 24 * time.Hour
	if err := s.alice.ModifyPolicy(ctx, "/web/browsing.csv", aliceV2); err != nil {
		t.Fatal(err)
	}
	bobV2 := s.bob.NewPolicy("/medical/ds1.ttl")
	bobV2.Version = 2
	bobV2.AllowedPurposes = []policy.Purpose{policy.PurposeAcademic}
	if err := s.bob.ModifyPolicy(ctx, "/medical/ds1.ttl", bobV2); err != nil {
		t.Fatal(err)
	}
	if err := s.bobAsCon.WaitPolicyVersion(s.browsingIRI, 2, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	if err := s.aliceAsCon.WaitPolicyVersion(s.medicalIRI, 2, 5*time.Second); err != nil {
		t.Fatal(err)
	}

	// Alice's data is erased from Bob's device after the new expiry.
	s.d.Clock.Advance(5*24*time.Hour + time.Minute)
	if s.bobAsCon.App.Holds(s.browsingIRI) {
		t.Fatal("Alice's data survived on Bob's device")
	}
	// Alice's use of Bob's data is revoked (her purpose is now
	// disallowed).
	if _, err := s.aliceAsCon.Use(s.medicalIRI, policy.ActionUse); !errors.Is(err, tee.ErrUseRevoked) {
		t.Fatalf("Alice's use after Bob's change: %v", err)
	}

	// All three validators agree on the ledger.
	h0 := s.d.Nodes[0].Head().Hash()
	for i, n := range s.d.Nodes[1:] {
		if n.Head().Hash() != h0 {
			t.Fatalf("validator %d diverged", i+1)
		}
	}
}

func TestManualSealingMode(t *testing.T) {
	d := newDeployment(t, Config{Sealing: SealManually})
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()

	alice, err := d.NewOwner("alice")
	if err != nil {
		t.Fatal(err)
	}
	errCh := make(chan error, 1)
	go func() { errCh <- alice.InitializePod(ctx, nil) }()

	// The registration tx sits in mempools until a block is sealed.
	deadline := time.Now().Add(2 * time.Second)
	for d.Nodes[0].PendingTxs() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("tx never reached the mempool")
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := d.SealBlock(); err != nil {
		t.Fatal(err)
	}
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}
}
