package distexchange

import (
	"context"
	"encoding/hex"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/chain"
	"repro/internal/contract"
	"repro/internal/cryptoutil"
	"repro/internal/policy"
	"repro/internal/simclock"
)

var t0 = time.Date(2023, 10, 9, 0, 0, 0, 0, time.UTC)

// fixture wires a single-node chain with the DE App deployed, a simulated
// clock, a TEE manufacturer CA, and auto-sealing on submission.
type fixture struct {
	t      *testing.T
	node   *chain.Node
	clk    *simclock.Sim
	ca     *cryptoutil.Authority
	deAddr cryptoutil.Address

	alice  *Client // pod owner (also the authority that seals)
	bob    *Client // second pod owner
	device *Client // consumer TEE device identity
	devKey *cryptoutil.KeyPair
}

// sealingBackend wraps a node so every submission is sealed immediately,
// keeping tests synchronous.
type sealingBackend struct{ node *chain.Node }

func (b sealingBackend) SubmitTx(tx *chain.Tx) (cryptoutil.Hash, error) {
	h, err := b.node.SubmitTx(tx)
	if err != nil {
		return h, err
	}
	if _, err := b.node.Seal(); err != nil {
		return h, err
	}
	return h, nil
}

func (b sealingBackend) WaitForReceipt(ctx context.Context, h cryptoutil.Hash) (*chain.Receipt, error) {
	return b.node.WaitForReceipt(ctx, h)
}

func (b sealingBackend) Query(c cryptoutil.Address, method string, args []byte) ([]byte, error) {
	return b.node.Query(c, method, args)
}

func (b sealingBackend) NonceFor(a cryptoutil.Address) uint64 { return b.node.NonceFor(a) }

func newFixture(t *testing.T) *fixture {
	t.Helper()
	ca, err := cryptoutil.NewAuthority("tee-manufacturer")
	if err != nil {
		t.Fatal(err)
	}
	rt := contract.NewRuntime()
	deAddr := rt.Deploy(ContractName, New(Config{
		ManufacturerCAKey: ca.PublicBytes(),
		ManufacturerCA:    ca.Address(),
		MaxPolicyLag:      0,
	}))
	authority := cryptoutil.MustGenerateKey()
	clk := simclock.NewSim(t0)
	node, err := chain.NewNode(chain.Config{
		Key:         authority,
		Authorities: []cryptoutil.Address{authority.Address()},
		Executor:    rt,
		Clock:       clk,
		GenesisTime: t0,
	})
	if err != nil {
		t.Fatal(err)
	}
	backend := sealingBackend{node: node}
	devKey := cryptoutil.MustGenerateKey()
	return &fixture{
		t:      t,
		node:   node,
		clk:    clk,
		ca:     ca,
		deAddr: deAddr,
		alice:  NewClient(backend, cryptoutil.MustGenerateKey(), deAddr),
		bob:    NewClient(backend, cryptoutil.MustGenerateKey(), deAddr),
		device: NewClient(backend, devKey, deAddr),
		devKey: devKey,
	}
}

// deviceCert issues a manufacturer certificate for the fixture device.
func (f *fixture) deviceCert(measurement cryptoutil.Hash) []byte {
	f.t.Helper()
	cert, err := f.ca.Issue(f.devKey,
		map[string]string{"measurement": hex.EncodeToString(measurement[:])},
		t0, t0.Add(365*24*time.Hour))
	if err != nil {
		f.t.Fatal(err)
	}
	raw, err := cert.Encode()
	if err != nil {
		f.t.Fatal(err)
	}
	return raw
}

// registerAlicePodAndResource walks Fig. 2(1) + 2(2) for Alice.
func (f *fixture) registerAlicePodAndResource(pol *policy.Policy) string {
	f.t.Helper()
	ctx := context.Background()
	if _, err := f.alice.RegisterPod(ctx, RegisterPodArgs{
		OwnerWebID: "https://alice.pod/profile#me",
		Location:   "https://alice.pod/",
	}); err != nil {
		f.t.Fatal(err)
	}
	iri := pol.ResourceIRI
	if _, err := f.alice.RegisterResource(ctx, RegisterResourceArgs{
		ResourceIRI: iri,
		PodWebID:    "https://alice.pod/profile#me",
		Location:    "https://alice.pod/web/browsing.csv",
		Policy:      pol,
	}); err != nil {
		f.t.Fatal(err)
	}
	return iri
}

// registerDevice attests and registers the fixture device.
func (f *fixture) registerDevice() {
	f.t.Helper()
	var m cryptoutil.Hash
	copy(m[:], []byte("trusted-app-measurement-00000000"))
	if _, err := f.device.RegisterDevice(context.Background(), f.deviceCert(m)); err != nil {
		f.t.Fatal(err)
	}
}

// grantAndRetrieve records a grant for the device and confirms retrieval.
func (f *fixture) grantAndRetrieve(iri string, purpose policy.Purpose) {
	f.t.Helper()
	ctx := context.Background()
	if _, err := f.alice.RecordGrant(ctx, RecordGrantArgs{
		ResourceIRI: iri,
		Consumer:    f.device.Address(),
		Device:      f.device.Address(),
		Purpose:     purpose,
	}); err != nil {
		f.t.Fatal(err)
	}
	if _, err := f.device.ConfirmRetrieval(ctx, iri); err != nil {
		f.t.Fatal(err)
	}
}

// signedEvidence builds device-signed evidence.
func (f *fixture) signedEvidence(ev Evidence) SignedEvidence {
	f.t.Helper()
	sig, err := f.devKey.Sign(ev.SigningBytes())
	if err != nil {
		f.t.Fatal(err)
	}
	return SignedEvidence{Evidence: ev, Signature: sig}
}

func alicePolicy() *policy.Policy {
	p := policy.New("https://alice.pod/web/browsing.csv", "https://alice.pod/profile#me", t0)
	p.MaxRetention = 30 * 24 * time.Hour
	return p
}

func TestPodInitiation(t *testing.T) {
	f := newFixture(t)
	ctx := context.Background()
	def := policy.New("https://alice.pod/", "https://alice.pod/profile#me", t0)
	if _, err := f.alice.RegisterPod(ctx, RegisterPodArgs{
		OwnerWebID:    "https://alice.pod/profile#me",
		Location:      "https://alice.pod/",
		DefaultPolicy: def,
	}); err != nil {
		t.Fatal(err)
	}
	rec, err := f.alice.GetPod("https://alice.pod/profile#me")
	if err != nil {
		t.Fatal(err)
	}
	if rec.Location != "https://alice.pod/" || rec.Owner != f.alice.Address() {
		t.Fatalf("pod record = %+v", rec)
	}
	if rec.DefaultPolicy == nil || rec.DefaultPolicy.Version != 1 {
		t.Fatalf("default policy = %+v", rec.DefaultPolicy)
	}
	events := f.node.Events(chain.EventFilter{Topic: TopicPodRegistered})
	if len(events) != 1 || events[0].Key != "https://alice.pod/profile#me" {
		t.Fatalf("events = %+v", events)
	}

	// Duplicate registration reverts.
	_, err = f.alice.RegisterPod(ctx, RegisterPodArgs{
		OwnerWebID: "https://alice.pod/profile#me", Location: "https://alice.pod/",
	})
	var revert *RevertError
	if !errors.As(err, &revert) || !strings.Contains(revert.Reason, "already registered") {
		t.Fatalf("duplicate: %v", err)
	}

	// Missing fields revert.
	if _, err := f.bob.RegisterPod(ctx, RegisterPodArgs{OwnerWebID: "x"}); err == nil {
		t.Fatal("missing location accepted")
	}
}

func TestResourceInitiation(t *testing.T) {
	f := newFixture(t)
	ctx := context.Background()
	iri := f.registerAlicePodAndResource(alicePolicy())

	rec, err := f.alice.GetResource(iri)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Policy == nil || rec.Policy.MaxRetention != 30*24*time.Hour {
		t.Fatalf("resource policy = %+v", rec.Policy)
	}
	if rec.Owner != f.alice.Address() {
		t.Fatalf("owner = %s", rec.Owner)
	}

	// Both registration events fired.
	if n := len(f.node.Events(chain.EventFilter{Topic: TopicResourceRegistered})); n != 1 {
		t.Fatalf("ResourceRegistered events = %d", n)
	}
	if n := len(f.node.Events(chain.EventFilter{Topic: TopicPolicyPublished})); n != 1 {
		t.Fatalf("PolicyPublished events = %d", n)
	}

	// Only the pod owner may publish into the pod.
	_, err = f.bob.RegisterResource(ctx, RegisterResourceArgs{
		ResourceIRI: "https://alice.pod/other",
		PodWebID:    "https://alice.pod/profile#me",
		Location:    "https://alice.pod/other",
		Policy:      policy.New("https://alice.pod/other", "https://alice.pod/profile#me", t0),
	})
	if err == nil {
		t.Fatal("non-owner published a resource")
	}

	// Duplicate resource reverts.
	if _, err := f.alice.RegisterResource(ctx, RegisterResourceArgs{
		ResourceIRI: iri, PodWebID: "https://alice.pod/profile#me",
		Location: "x", Policy: alicePolicy(),
	}); err == nil {
		t.Fatal("duplicate resource accepted")
	}

	// Unregistered pod reverts.
	if _, err := f.bob.RegisterResource(ctx, RegisterResourceArgs{
		ResourceIRI: "https://bob.pod/r", PodWebID: "https://bob.pod/profile#me",
		Location: "https://bob.pod/r",
		Policy:   policy.New("https://bob.pod/r", "https://bob.pod/profile#me", t0),
	}); err == nil {
		t.Fatal("resource in unregistered pod accepted")
	}
}

func TestResourceInitiationDefaultPolicyFallback(t *testing.T) {
	f := newFixture(t)
	ctx := context.Background()
	def := policy.New("https://alice.pod/", "https://alice.pod/profile#me", t0)
	def.MaxRetention = time.Hour
	if _, err := f.alice.RegisterPod(ctx, RegisterPodArgs{
		OwnerWebID:    "https://alice.pod/profile#me",
		Location:      "https://alice.pod/",
		DefaultPolicy: def,
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := f.alice.RegisterResource(ctx, RegisterResourceArgs{
		ResourceIRI: "https://alice.pod/r1",
		PodWebID:    "https://alice.pod/profile#me",
		Location:    "https://alice.pod/r1",
		// No policy: the pod default applies, re-bound to the resource.
	}); err != nil {
		t.Fatal(err)
	}
	rec, err := f.alice.GetResource("https://alice.pod/r1")
	if err != nil {
		t.Fatal(err)
	}
	if rec.Policy.ResourceIRI != "https://alice.pod/r1" || rec.Policy.MaxRetention != time.Hour {
		t.Fatalf("fallback policy = %+v", rec.Policy)
	}
}

func TestResourceIndexing(t *testing.T) {
	f := newFixture(t)
	f.registerAlicePodAndResource(alicePolicy())

	all, err := f.device.ListResources("")
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 1 {
		t.Fatalf("ListResources = %d entries", len(all))
	}
	byPod, err := f.device.ListResources("https://alice.pod/profile#me")
	if err != nil {
		t.Fatal(err)
	}
	if len(byPod) != 1 || byPod[0].Location != "https://alice.pod/web/browsing.csv" {
		t.Fatalf("byPod = %+v", byPod)
	}
	none, err := f.device.ListResources("https://nobody.pod/profile#me")
	if err != nil {
		t.Fatal(err)
	}
	if len(none) != 0 {
		t.Fatalf("unknown pod listed %d resources", len(none))
	}
	// Missing single resource lookups error.
	if _, err := f.device.GetResource("https://missing"); err == nil {
		t.Fatal("missing resource lookup succeeded")
	}
}

func TestDeviceRegistration(t *testing.T) {
	f := newFixture(t)
	ctx := context.Background()
	var m cryptoutil.Hash
	copy(m[:], []byte("trusted-app-measurement-00000000"))

	t.Run("valid certificate", func(t *testing.T) {
		if _, err := f.device.RegisterDevice(ctx, f.deviceCert(m)); err != nil {
			t.Fatal(err)
		}
		rec, err := f.device.GetDevice(f.device.Address())
		if err != nil {
			t.Fatal(err)
		}
		if rec.Measurement != m {
			t.Fatalf("measurement = %s", rec.Measurement)
		}
	})

	t.Run("certificate from untrusted CA", func(t *testing.T) {
		rogue, err := cryptoutil.NewAuthority("rogue")
		if err != nil {
			t.Fatal(err)
		}
		other := NewClient(sealingBackend{node: f.node}, cryptoutil.MustGenerateKey(), f.deAddr)
		cert, err := rogue.Issue(other.Key(), map[string]string{"measurement": hex.EncodeToString(m[:])}, t0, t0.Add(time.Hour))
		if err != nil {
			t.Fatal(err)
		}
		raw, _ := cert.Encode()
		if _, err := other.RegisterDevice(ctx, raw); err == nil {
			t.Fatal("rogue certificate accepted")
		}
	})

	t.Run("stolen certificate (subject != sender)", func(t *testing.T) {
		thief := NewClient(sealingBackend{node: f.node}, cryptoutil.MustGenerateKey(), f.deAddr)
		if _, err := thief.RegisterDevice(ctx, f.deviceCert(m)); err == nil {
			t.Fatal("certificate for another subject accepted")
		}
	})

	t.Run("missing measurement claim", func(t *testing.T) {
		fresh := cryptoutil.MustGenerateKey()
		client := NewClient(sealingBackend{node: f.node}, fresh, f.deAddr)
		cert, err := f.ca.Issue(fresh, nil, t0, t0.Add(time.Hour))
		if err != nil {
			t.Fatal(err)
		}
		raw, _ := cert.Encode()
		if _, err := client.RegisterDevice(ctx, raw); err == nil {
			t.Fatal("certificate without measurement accepted")
		}
	})

	t.Run("expired certificate", func(t *testing.T) {
		f.clk.Advance(400 * 24 * time.Hour)
		fresh := cryptoutil.MustGenerateKey()
		client := NewClient(sealingBackend{node: f.node}, fresh, f.deAddr)
		cert, err := f.ca.Issue(fresh, map[string]string{"measurement": hex.EncodeToString(m[:])}, t0, t0.Add(time.Hour))
		if err != nil {
			t.Fatal(err)
		}
		raw, _ := cert.Encode()
		if _, err := client.RegisterDevice(ctx, raw); err == nil {
			t.Fatal("expired certificate accepted")
		}
	})
}

func TestGrantLifecycle(t *testing.T) {
	f := newFixture(t)
	ctx := context.Background()
	iri := f.registerAlicePodAndResource(alicePolicy())
	f.registerDevice()

	// Grant to unregistered device reverts.
	ghost := cryptoutil.MustGenerateKey().Address()
	if _, err := f.alice.RecordGrant(ctx, RecordGrantArgs{
		ResourceIRI: iri, Consumer: ghost, Device: ghost, Purpose: policy.PurposeWebAnalytics,
	}); err == nil {
		t.Fatal("grant to unregistered device accepted")
	}

	// Non-owner cannot grant.
	if _, err := f.bob.RecordGrant(ctx, RecordGrantArgs{
		ResourceIRI: iri, Consumer: f.device.Address(), Device: f.device.Address(),
		Purpose: policy.PurposeWebAnalytics,
	}); err == nil {
		t.Fatal("non-owner recorded a grant")
	}

	f.grantAndRetrieve(iri, policy.PurposeWebAnalytics)

	grants, err := f.alice.GetGrants(iri)
	if err != nil {
		t.Fatal(err)
	}
	if len(grants) != 1 || grants[0].RetrievedAt.IsZero() || grants[0].Revoked {
		t.Fatalf("grants = %+v", grants)
	}

	// Double confirmation reverts.
	if _, err := f.device.ConfirmRetrieval(ctx, iri); err == nil {
		t.Fatal("double retrieval confirmation accepted")
	}

	// Revocation.
	if _, err := f.alice.RevokeGrant(ctx, RevokeGrantArgs{ResourceIRI: iri, Device: f.device.Address()}); err != nil {
		t.Fatal(err)
	}
	grants, _ = f.alice.GetGrants(iri)
	if !grants[0].Revoked {
		t.Fatal("grant not revoked")
	}
	if _, err := f.alice.RevokeGrant(ctx, RevokeGrantArgs{ResourceIRI: iri, Device: f.device.Address()}); err == nil {
		t.Fatal("double revocation accepted")
	}
}

func TestGrantPurposeCheckedAgainstPolicy(t *testing.T) {
	f := newFixture(t)
	ctx := context.Background()
	pol := policy.New("https://alice.pod/med", "https://alice.pod/profile#me", t0)
	pol.AllowedPurposes = []policy.Purpose{policy.PurposeMedicalResearch}
	if _, err := f.alice.RegisterPod(ctx, RegisterPodArgs{
		OwnerWebID: "https://alice.pod/profile#me", Location: "https://alice.pod/",
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := f.alice.RegisterResource(ctx, RegisterResourceArgs{
		ResourceIRI: "https://alice.pod/med", PodWebID: "https://alice.pod/profile#me",
		Location: "https://alice.pod/med", Policy: pol,
	}); err != nil {
		t.Fatal(err)
	}
	f.registerDevice()
	_, err := f.alice.RecordGrant(ctx, RecordGrantArgs{
		ResourceIRI: "https://alice.pod/med", Consumer: f.device.Address(),
		Device: f.device.Address(), Purpose: policy.PurposeMarketing,
	})
	if err == nil {
		t.Fatal("grant with disallowed purpose accepted")
	}
}

func TestPolicyModification(t *testing.T) {
	f := newFixture(t)
	ctx := context.Background()
	iri := f.registerAlicePodAndResource(alicePolicy())

	week := 7 * 24 * time.Hour
	updated := alicePolicy().NextVersion(t0.Add(48 * time.Hour))
	updated.MaxRetention = week
	if _, err := f.alice.UpdatePolicy(ctx, UpdatePolicyArgs{ResourceIRI: iri, Policy: updated}); err != nil {
		t.Fatal(err)
	}
	rec, err := f.alice.GetResource(iri)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Policy.Version != 2 || rec.Policy.MaxRetention != week {
		t.Fatalf("policy after update = %+v", rec.Policy)
	}
	if n := len(f.node.Events(chain.EventFilter{Topic: TopicPolicyUpdated, Key: iri})); n != 1 {
		t.Fatalf("PolicyUpdated events = %d", n)
	}

	// Stale version rejected.
	stale := alicePolicy() // version 1 again
	if _, err := f.alice.UpdatePolicy(ctx, UpdatePolicyArgs{ResourceIRI: iri, Policy: stale}); err == nil {
		t.Fatal("stale policy version accepted")
	}

	// Non-owner rejected.
	v3 := updated.NextVersion(t0.Add(72 * time.Hour))
	if _, err := f.bob.UpdatePolicy(ctx, UpdatePolicyArgs{ResourceIRI: iri, Policy: v3}); err == nil {
		t.Fatal("non-owner policy update accepted")
	}

	// Policy bound to a different resource rejected.
	foreign := policy.New("https://other", "https://alice.pod/profile#me", t0)
	foreign.Version = 9
	if _, err := f.alice.UpdatePolicy(ctx, UpdatePolicyArgs{ResourceIRI: iri, Policy: foreign}); err == nil {
		t.Fatal("cross-resource policy accepted")
	}
}

func TestMonitoringRoundAndEvidence(t *testing.T) {
	f := newFixture(t)
	ctx := context.Background()
	iri := f.registerAlicePodAndResource(alicePolicy())
	f.registerDevice()
	f.grantAndRetrieve(iri, policy.PurposeWebAnalytics)

	round, err := f.alice.RequestMonitoring(ctx, iri)
	if err != nil {
		t.Fatal(err)
	}
	if round.Round != 1 || len(round.Targets) != 1 || round.Targets[0] != f.device.Address() {
		t.Fatalf("round = %+v", round)
	}
	if round.Closed {
		t.Fatal("round with targets should stay open")
	}

	// Compliant evidence: still stored, within retention, allowed purposes.
	now := f.clk.Now()
	ev := Evidence{
		ResourceIRI:   iri,
		Device:        f.device.Address(),
		Round:         round.Round,
		PolicyVersion: 1,
		StillStored:   true,
		RetrievedAt:   now,
		UseCount:      2,
		Entries: []UsageEntry{
			{At: now, Action: policy.ActionUse, Purpose: policy.PurposeWebAnalytics, Allowed: true},
		},
		GeneratedAt: now,
	}
	rec, err := f.device.SubmitEvidence(ctx, f.signedEvidence(ev))
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Findings) != 0 {
		t.Fatalf("compliant evidence produced findings: %v", rec.Findings)
	}

	// Round closed after the single target responded.
	closed, err := f.alice.GetMonitoringRound(iri, round.Round)
	if err != nil {
		t.Fatal(err)
	}
	if !closed.Closed || len(closed.Responded) != 1 {
		t.Fatalf("round after evidence = %+v", closed)
	}

	// No violations.
	viols, err := f.alice.GetViolations(iri)
	if err != nil {
		t.Fatal(err)
	}
	if len(viols) != 0 {
		t.Fatalf("violations = %+v", viols)
	}
	evs, err := f.alice.GetEvidence(iri)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 1 || !evs[0].Verified {
		t.Fatalf("evidence records = %+v", evs)
	}
}

func TestEvidenceDetectsRetentionViolation(t *testing.T) {
	f := newFixture(t)
	ctx := context.Background()
	pol := alicePolicy()
	pol.MaxRetention = 24 * time.Hour
	iri := f.registerAlicePodAndResource(pol)
	f.registerDevice()
	f.grantAndRetrieve(iri, policy.PurposeWebAnalytics)
	retrievedAt := f.clk.Now()

	// Two days later the copy is still stored: retention violation.
	f.clk.Advance(48 * time.Hour)
	ev := Evidence{
		ResourceIRI: iri, Device: f.device.Address(), PolicyVersion: 1,
		StillStored: true, RetrievedAt: retrievedAt, GeneratedAt: f.clk.Now(),
	}
	rec, err := f.device.SubmitEvidence(ctx, f.signedEvidence(ev))
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Findings) != 1 || rec.Findings[0] != ViolationRetention {
		t.Fatalf("findings = %v", rec.Findings)
	}
	viols, err := f.alice.GetViolations(iri)
	if err != nil {
		t.Fatal(err)
	}
	if len(viols) != 1 || viols[0].Kind != ViolationRetention || viols[0].Device != f.device.Address() {
		t.Fatalf("violations = %+v", viols)
	}
	if n := len(f.node.Events(chain.EventFilter{Topic: TopicViolationDetected, Key: iri})); n != 1 {
		t.Fatalf("ViolationDetected events = %d", n)
	}
}

func TestEvidenceDetectsLateDeletion(t *testing.T) {
	f := newFixture(t)
	ctx := context.Background()
	pol := alicePolicy()
	pol.MaxRetention = 24 * time.Hour
	iri := f.registerAlicePodAndResource(pol)
	f.registerDevice()
	f.grantAndRetrieve(iri, policy.PurposeWebAnalytics)
	retrievedAt := f.clk.Now()

	f.clk.Advance(72 * time.Hour)
	ev := Evidence{
		ResourceIRI: iri, Device: f.device.Address(), PolicyVersion: 1,
		StillStored: false, DeletedAt: retrievedAt.Add(48 * time.Hour),
		RetrievedAt: retrievedAt, GeneratedAt: f.clk.Now(),
	}
	rec, err := f.device.SubmitEvidence(ctx, f.signedEvidence(ev))
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Findings) != 1 || rec.Findings[0] != ViolationRetention {
		t.Fatalf("findings = %v", rec.Findings)
	}
}

func TestEvidenceDetectsPurposeAndMaxUseViolations(t *testing.T) {
	f := newFixture(t)
	ctx := context.Background()
	pol := alicePolicy()
	pol.AllowedPurposes = []policy.Purpose{policy.PurposeWebAnalytics}
	pol.MaxUses = 1
	iri := f.registerAlicePodAndResource(pol)
	f.registerDevice()
	f.grantAndRetrieve(iri, policy.PurposeWebAnalytics)
	now := f.clk.Now()

	ev := Evidence{
		ResourceIRI: iri, Device: f.device.Address(), PolicyVersion: 1,
		StillStored: true, RetrievedAt: now, UseCount: 3,
		Entries: []UsageEntry{
			{At: now, Action: policy.ActionUse, Purpose: policy.PurposeMarketing, Allowed: true},
		},
		GeneratedAt: now,
	}
	rec, err := f.device.SubmitEvidence(ctx, f.signedEvidence(ev))
	if err != nil {
		t.Fatal(err)
	}
	kinds := map[ViolationKind]bool{}
	for _, k := range rec.Findings {
		kinds[k] = true
	}
	if !kinds[ViolationPurpose] || !kinds[ViolationMaxUses] {
		t.Fatalf("findings = %v, want purpose + max-uses", rec.Findings)
	}
}

func TestEvidenceDetectsStalePolicy(t *testing.T) {
	f := newFixture(t)
	ctx := context.Background()
	iri := f.registerAlicePodAndResource(alicePolicy())
	f.registerDevice()
	f.grantAndRetrieve(iri, policy.PurposeWebAnalytics)

	v2 := alicePolicy().NextVersion(t0.Add(time.Hour))
	if _, err := f.alice.UpdatePolicy(ctx, UpdatePolicyArgs{ResourceIRI: iri, Policy: v2}); err != nil {
		t.Fatal(err)
	}
	now := f.clk.Now()
	ev := Evidence{
		ResourceIRI: iri, Device: f.device.Address(), PolicyVersion: 1, // lagging
		StillStored: true, RetrievedAt: now, GeneratedAt: now,
	}
	rec, err := f.device.SubmitEvidence(ctx, f.signedEvidence(ev))
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Findings) != 1 || rec.Findings[0] != ViolationStalePolicy {
		t.Fatalf("findings = %v", rec.Findings)
	}
}

func TestEvidenceSignatureRejection(t *testing.T) {
	f := newFixture(t)
	ctx := context.Background()
	iri := f.registerAlicePodAndResource(alicePolicy())
	f.registerDevice()
	f.grantAndRetrieve(iri, policy.PurposeWebAnalytics)
	now := f.clk.Now()

	ev := Evidence{
		ResourceIRI: iri, Device: f.device.Address(), PolicyVersion: 1,
		StillStored: true, RetrievedAt: now, GeneratedAt: now,
	}

	t.Run("forged signature", func(t *testing.T) {
		mallory := cryptoutil.MustGenerateKey()
		sig, err := mallory.Sign(ev.SigningBytes())
		if err != nil {
			t.Fatal(err)
		}
		_, err = f.device.SubmitEvidence(ctx, SignedEvidence{Evidence: ev, Signature: sig})
		if err == nil {
			t.Fatal("forged evidence accepted")
		}
	})

	t.Run("tampered evidence", func(t *testing.T) {
		signed := f.signedEvidence(ev)
		signed.Evidence.UseCount = 999
		if _, err := f.device.SubmitEvidence(ctx, signed); err == nil {
			t.Fatal("tampered evidence accepted")
		}
	})

	t.Run("evidence for unknown device", func(t *testing.T) {
		bad := ev
		bad.Device = cryptoutil.MustGenerateKey().Address()
		if _, err := f.device.SubmitEvidence(ctx, f.signedEvidence(bad)); err == nil {
			t.Fatal("evidence for unregistered device accepted")
		}
	})

	t.Run("evidence without grant", func(t *testing.T) {
		bad := ev
		bad.ResourceIRI = iri + "-other"
		if _, err := f.device.SubmitEvidence(ctx, f.signedEvidence(bad)); err == nil {
			t.Fatal("evidence without a grant accepted")
		}
	})
}

func TestReportUnresponsive(t *testing.T) {
	f := newFixture(t)
	ctx := context.Background()
	iri := f.registerAlicePodAndResource(alicePolicy())
	f.registerDevice()
	f.grantAndRetrieve(iri, policy.PurposeWebAnalytics)

	round, err := f.alice.RequestMonitoring(ctx, iri)
	if err != nil {
		t.Fatal(err)
	}
	// Nobody answers; the owner closes the round.
	if _, err := f.alice.ReportUnresponsive(ctx, iri, round.Round); err != nil {
		t.Fatal(err)
	}
	viols, err := f.alice.GetViolations(iri)
	if err != nil {
		t.Fatal(err)
	}
	if len(viols) != 1 || viols[0].Kind != ViolationUnresponsive {
		t.Fatalf("violations = %+v", viols)
	}
	// Closing twice reverts.
	if _, err := f.alice.ReportUnresponsive(ctx, iri, round.Round); err == nil {
		t.Fatal("double close accepted")
	}
	// Round with no targets is born closed.
	if _, err := f.alice.RevokeGrant(ctx, RevokeGrantArgs{ResourceIRI: iri, Device: f.device.Address()}); err != nil {
		t.Fatal(err)
	}
	empty, err := f.alice.RequestMonitoring(ctx, iri)
	if err != nil {
		t.Fatal(err)
	}
	if !empty.Closed || len(empty.Targets) != 0 {
		t.Fatalf("empty round = %+v", empty)
	}
}

func TestRevokeGrantEdgeCases(t *testing.T) {
	f := newFixture(t)
	ctx := context.Background()
	iri := f.registerAlicePodAndResource(alicePolicy())
	f.registerDevice()

	// Revoking an unknown resource reverts.
	if _, err := f.alice.RevokeGrant(ctx, RevokeGrantArgs{ResourceIRI: "https://missing", Device: f.device.Address()}); err == nil {
		t.Fatal("revoke on unknown resource accepted")
	}
	// Revoking before any grant exists reverts.
	if _, err := f.alice.RevokeGrant(ctx, RevokeGrantArgs{ResourceIRI: iri, Device: f.device.Address()}); err == nil {
		t.Fatal("revoke without grant accepted")
	}
	// Non-owner revocation reverts.
	f.grantAndRetrieve(iri, policy.PurposeWebAnalytics)
	if _, err := f.bob.RevokeGrant(ctx, RevokeGrantArgs{ResourceIRI: iri, Device: f.device.Address()}); err == nil {
		t.Fatal("non-owner revoke accepted")
	}
	// Revoked grants are excluded from monitoring targets, and the
	// revoked device can no longer confirm anything.
	if _, err := f.alice.RevokeGrant(ctx, RevokeGrantArgs{ResourceIRI: iri, Device: f.device.Address()}); err != nil {
		t.Fatal(err)
	}
	round, err := f.alice.RequestMonitoring(ctx, iri)
	if err != nil {
		t.Fatal(err)
	}
	if len(round.Targets) != 0 || !round.Closed {
		t.Fatalf("round after revocation = %+v", round)
	}
}

func TestReportUnresponsiveEdgeCases(t *testing.T) {
	f := newFixture(t)
	ctx := context.Background()
	iri := f.registerAlicePodAndResource(alicePolicy())
	f.registerDevice()
	f.grantAndRetrieve(iri, policy.PurposeWebAnalytics)

	// Unknown round reverts.
	if _, err := f.alice.ReportUnresponsive(ctx, iri, 99); err == nil {
		t.Fatal("unknown round accepted")
	}
	// Unknown resource reverts.
	if _, err := f.alice.ReportUnresponsive(ctx, "https://missing", 1); err == nil {
		t.Fatal("unknown resource accepted")
	}
	// Non-owner reverts.
	round, err := f.alice.RequestMonitoring(ctx, iri)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.bob.ReportUnresponsive(ctx, iri, round.Round); err == nil {
		t.Fatal("non-owner close accepted")
	}
	// Partial response: two targets, one answers, one is flagged.
	dev2 := cryptoutil.MustGenerateKey()
	client2 := NewClient(sealingBackend{node: f.node}, dev2, f.deAddr)
	var m cryptoutil.Hash
	copy(m[:], []byte("trusted-app-measurement-00000000"))
	cert, err := f.ca.Issue(dev2, map[string]string{"measurement": hexEncode(m)}, t0, t0.Add(time.Hour*24*365))
	if err != nil {
		t.Fatal(err)
	}
	certRaw, _ := cert.Encode()
	if _, err := client2.RegisterDevice(ctx, certRaw); err != nil {
		t.Fatal(err)
	}
	if _, err := f.alice.RecordGrant(ctx, RecordGrantArgs{
		ResourceIRI: iri, Consumer: dev2.Address(), Device: dev2.Address(),
		Purpose: policy.PurposeWebAnalytics,
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := client2.ConfirmRetrieval(ctx, iri); err != nil {
		t.Fatal(err)
	}
	round2, err := f.alice.RequestMonitoring(ctx, iri)
	if err != nil {
		t.Fatal(err)
	}
	if len(round2.Targets) != 2 {
		t.Fatalf("targets = %v", round2.Targets)
	}
	// Only device 1 answers.
	now := f.clk.Now()
	ev := Evidence{
		ResourceIRI: iri, Device: f.device.Address(), Round: round2.Round,
		PolicyVersion: 1, StillStored: true, RetrievedAt: now, GeneratedAt: now,
	}
	if _, err := f.device.SubmitEvidence(ctx, f.signedEvidence(ev)); err != nil {
		t.Fatal(err)
	}
	if _, err := f.alice.ReportUnresponsive(ctx, iri, round2.Round); err != nil {
		t.Fatal(err)
	}
	viols, err := f.alice.GetViolations(iri)
	if err != nil {
		t.Fatal(err)
	}
	if len(viols) != 1 || viols[0].Device != dev2.Address() || viols[0].Kind != ViolationUnresponsive {
		t.Fatalf("violations = %+v", viols)
	}
}

func TestRevertErrorMessage(t *testing.T) {
	err := &RevertError{Method: "updatePolicy", Reason: "stale version"}
	if msg := err.Error(); !strings.Contains(msg, "updatePolicy") || !strings.Contains(msg, "stale version") {
		t.Fatalf("message = %q", msg)
	}
}

func hexEncode(h cryptoutil.Hash) string { return hex.EncodeToString(h[:]) }

func TestMonitoringOnlyOwner(t *testing.T) {
	f := newFixture(t)
	iri := f.registerAlicePodAndResource(alicePolicy())
	if _, err := f.bob.RequestMonitoring(context.Background(), iri); err == nil {
		t.Fatal("non-owner started monitoring")
	}
}
