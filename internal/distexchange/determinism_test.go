package distexchange

import (
	"context"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/chain"
	"repro/internal/contract"
	"repro/internal/cryptoutil"
	"repro/internal/policy"
	"repro/internal/simclock"
)

// replica is an independent node+runtime with the DE App under identical
// configuration.
type replica struct {
	node   *chain.Node
	client *Client
	owner  *Client
}

func newReplica(t *testing.T, ca *cryptoutil.Authority, clk *simclock.Sim, ownerKey, deviceKey *cryptoutil.KeyPair) *replica {
	t.Helper()
	rt := contract.NewRuntime()
	deAddr := rt.Deploy(ContractName, New(Config{
		ManufacturerCAKey: ca.PublicBytes(),
		ManufacturerCA:    ca.Address(),
	}))
	authority := cryptoutil.MustGenerateKey()
	node, err := chain.NewNode(chain.Config{
		Key:         authority,
		Authorities: []cryptoutil.Address{authority.Address()},
		Executor:    rt,
		Clock:       clk,
		GenesisTime: t0,
	})
	if err != nil {
		t.Fatal(err)
	}
	backend := sealingBackend{node: node}
	return &replica{
		node:   node,
		client: NewClient(backend, deviceKey, deAddr),
		owner:  NewClient(backend, ownerKey, deAddr),
	}
}

// TestStateDeterminismAcrossReplicas: the same DE App operation sequence
// executed on two independent nodes yields identical state roots — the
// property that lets validators re-execute blocks and agree (§V-2). The
// sequence is randomized per run via testing/quick.
func TestStateDeterminismAcrossReplicas(t *testing.T) {
	ca, err := cryptoutil.NewAuthority("tee-ca")
	if err != nil {
		t.Fatal(err)
	}

	f := func(seed int64) bool {
		clk := simclock.NewSim(t0)
		ownerKey := cryptoutil.MustGenerateKey()
		deviceKey := cryptoutil.MustGenerateKey()
		a := newReplica(t, ca, clk, ownerKey, deviceKey)
		b := newReplica(t, ca, clk, ownerKey, deviceKey)
		ctx := context.Background()

		// Apply an identical randomized operation sequence to both.
		apply := func(r *replica) error {
			localRng := rand.New(rand.NewSource(seed)) // same stream per replica
			if _, err := r.owner.RegisterPod(ctx, RegisterPodArgs{
				OwnerWebID: "https://o/profile#me", Location: "https://o/",
			}); err != nil {
				return err
			}
			n := 2 + localRng.Intn(4)
			for i := range n {
				iri := fmt.Sprintf("https://o/r%d", i)
				pol := policy.New(iri, "https://o/profile#me", t0)
				pol.MaxRetention = time.Duration(1+localRng.Intn(100)) * time.Hour
				if _, err := r.owner.RegisterResource(ctx, RegisterResourceArgs{
					ResourceIRI: iri, PodWebID: "https://o/profile#me",
					Location: iri, Policy: pol,
				}); err != nil {
					return err
				}
				if localRng.Intn(2) == 0 {
					v2 := pol.NextVersion(t0.Add(time.Hour))
					v2.MaxUses = uint64(localRng.Intn(50))
					if _, err := r.owner.UpdatePolicy(ctx, UpdatePolicyArgs{ResourceIRI: iri, Policy: v2}); err != nil {
						return err
					}
				}
			}
			return nil
		}
		if err := apply(a); err != nil {
			t.Logf("replica a: %v", err)
			return false
		}
		if err := apply(b); err != nil {
			t.Logf("replica b: %v", err)
			return false
		}
		rootA := a.node.State().Root()
		rootB := b.node.State().Root()
		if rootA != rootB {
			t.Logf("state roots diverged for seed %d: %s vs %s", seed, rootA, rootB)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}
