package distexchange

import (
	"context"
	"testing"

	"repro/internal/policy"
)

func TestWithdrawResourceLifecycle(t *testing.T) {
	f := newFixture(t)
	ctx := context.Background()
	iri := f.registerAlicePodAndResource(alicePolicy())
	f.registerDevice()
	f.grantAndRetrieve(iri, policy.PurposeWebAnalytics)

	// Non-owner cannot withdraw.
	if _, err := f.bob.WithdrawResource(ctx, iri); err == nil {
		t.Fatal("non-owner withdrawal accepted")
	}
	// Unknown resource reverts.
	if _, err := f.alice.WithdrawResource(ctx, "https://missing"); err == nil {
		t.Fatal("unknown withdrawal accepted")
	}

	if _, err := f.alice.WithdrawResource(ctx, iri); err != nil {
		t.Fatal(err)
	}
	// Double withdrawal reverts.
	if _, err := f.alice.WithdrawResource(ctx, iri); err == nil {
		t.Fatal("double withdrawal accepted")
	}

	// The record survives (marked withdrawn) so monitoring continues.
	rec, err := f.alice.GetResource(iri)
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Withdrawn {
		t.Fatal("record not marked withdrawn")
	}
	round, err := f.alice.RequestMonitoring(ctx, iri)
	if err != nil {
		t.Fatal(err)
	}
	if len(round.Targets) != 1 {
		t.Fatalf("existing holder lost from monitoring: %+v", round)
	}

	// Index no longer lists it (full listing and by-pod).
	all, err := f.device.ListResources("")
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 0 {
		t.Fatalf("withdrawn resource still listed: %+v", all)
	}
	byPod, err := f.device.ListResources("https://alice.pod/profile#me")
	if err != nil {
		t.Fatal(err)
	}
	if len(byPod) != 0 {
		t.Fatalf("withdrawn resource still in pod index: %+v", byPod)
	}

	// New grants are refused.
	if _, err := f.alice.RecordGrant(ctx, RecordGrantArgs{
		ResourceIRI: iri, Consumer: f.device.Address(), Device: f.device.Address(),
		Purpose: policy.PurposeWebAnalytics,
	}); err == nil {
		t.Fatal("grant on withdrawn resource accepted")
	}
}
