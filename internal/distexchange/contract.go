package distexchange

import (
	"encoding/hex"
	"encoding/json"
	"fmt"

	"repro/internal/contract"
	"repro/internal/cryptoutil"
)

// Config parameterizes the DE App deployment.
type Config struct {
	// ManufacturerCAKey is the public key (uncompressed point) of the TEE
	// manufacturer certificate authority trusted for device registration.
	ManufacturerCAKey []byte
	// ManufacturerCA is the CA's address.
	ManufacturerCA cryptoutil.Address
	// MaxPolicyLag is how many policy versions a holder may lag behind
	// before monitoring flags a stale-policy violation. Zero means holders
	// must always enforce the latest version.
	MaxPolicyLag uint64
}

// Contract is the DE App smart contract.
type Contract struct {
	cfg Config
}

var _ contract.Contract = (*Contract)(nil)

// New returns a DE App contract instance.
func New(cfg Config) *Contract { return &Contract{cfg: cfg} }

// Storage key builders. Composite keys use '|' as the separator because it
// cannot appear in IRIs or hex addresses.
func podKey(webID string) string         { return "pod/" + webID }
func resKey(iri string) string           { return "res/" + iri }
func resByPodKey(pod, iri string) string { return "resbypod/" + pod + "|" + iri }
func devKey(a cryptoutil.Address) string { return "dev/" + a.String() }
func grantKey(iri string, d cryptoutil.Address) string {
	return "grant/" + iri + "|" + d.String()
}
func grantPrefix(iri string) string { return "grant/" + iri + "|" }
func roundKey(iri string, n uint64) string {
	return fmt.Sprintf("round/%s|%012d", iri, n)
}
func roundSeqKey(iri string) string { return "roundseq/" + iri }
func evKey(iri string, n uint64) string {
	return fmt.Sprintf("ev/%s|%012d", iri, n)
}
func evSeqKey(iri string) string { return "evseq/" + iri }
func violKey(iri string, n uint64) string {
	return fmt.Sprintf("viol/%s|%012d", iri, n)
}
func violSeqKey(iri string) string { return "violseq/" + iri }

// Call implements contract.Contract.
func (c *Contract) Call(env *contract.Env, method string, args []byte) ([]byte, error) {
	switch method {
	case "registerPod":
		return c.registerPod(env, args)
	case "registerResource":
		return c.registerResource(env, args)
	case "updatePolicy":
		return c.updatePolicy(env, args)
	case "withdrawResource":
		return c.withdrawResource(env, args)
	case "registerDevice":
		return c.registerDevice(env, args)
	case "recordGrant":
		return c.recordGrant(env, args)
	case "confirmRetrieval":
		return c.confirmRetrieval(env, args)
	case "revokeGrant":
		return c.revokeGrant(env, args)
	case "requestMonitoring":
		return c.requestMonitoring(env, args)
	case "submitEvidence":
		return c.submitEvidence(env, args)
	case "reportUnresponsive":
		return c.reportUnresponsive(env, args)
	default:
		return nil, contract.Revertf("unknown method %q", method)
	}
}

// --- storage helpers ---

func getJSON[T any](env *contract.Env, key string, out *T) (bool, error) {
	raw, ok, err := env.Get(key)
	if err != nil {
		return false, err
	}
	if !ok {
		return false, nil
	}
	if err := json.Unmarshal(raw, out); err != nil {
		return false, contract.Revertf("corrupt record at %s: %v", key, err)
	}
	return true, nil
}

func setJSON(env *contract.Env, key string, v any) error {
	raw, err := json.Marshal(v)
	if err != nil {
		return contract.Revertf("encode record at %s: %v", key, err)
	}
	return env.Set(key, raw)
}

func counter(env *contract.Env, key string) (uint64, error) {
	var n uint64
	if _, err := getJSON(env, key, &n); err != nil {
		return 0, err
	}
	return n, nil
}

func bumpCounter(env *contract.Env, key string) (uint64, error) {
	n, err := counter(env, key)
	if err != nil {
		return 0, err
	}
	n++
	if err := setJSON(env, key, n); err != nil {
		return 0, err
	}
	return n, nil
}

// --- pod initiation (Fig. 2(1)) ---

func (c *Contract) registerPod(env *contract.Env, raw []byte) ([]byte, error) {
	var args RegisterPodArgs
	if err := json.Unmarshal(raw, &args); err != nil {
		return nil, contract.Revertf("bad args: %v", err)
	}
	if args.OwnerWebID == "" || args.Location == "" {
		return nil, contract.Revertf("registerPod: ownerWebID and location are required")
	}
	var existing PodRecord
	if ok, err := getJSON(env, podKey(args.OwnerWebID), &existing); err != nil {
		return nil, err
	} else if ok {
		return nil, contract.Revertf("registerPod: pod %q already registered", args.OwnerWebID)
	}
	if args.DefaultPolicy != nil {
		if err := args.DefaultPolicy.Validate(); err != nil {
			return nil, contract.Revertf("registerPod: invalid default policy: %v", err)
		}
	}
	rec := PodRecord{
		OwnerWebID:    args.OwnerWebID,
		Location:      args.Location,
		Owner:         env.Sender,
		DefaultPolicy: args.DefaultPolicy,
		RegisteredAt:  env.Block.Time,
	}
	if err := setJSON(env, podKey(args.OwnerWebID), rec); err != nil {
		return nil, err
	}
	payload, _ := json.Marshal(rec)
	if err := env.Emit(TopicPodRegistered, args.OwnerWebID, payload); err != nil {
		return nil, err
	}
	return nil, nil
}

// --- resource initiation (Fig. 2(2)) ---

func (c *Contract) registerResource(env *contract.Env, raw []byte) ([]byte, error) {
	var args RegisterResourceArgs
	if err := json.Unmarshal(raw, &args); err != nil {
		return nil, contract.Revertf("bad args: %v", err)
	}
	if args.ResourceIRI == "" || args.PodWebID == "" || args.Location == "" {
		return nil, contract.Revertf("registerResource: resource, podWebID and location are required")
	}
	var pod PodRecord
	ok, err := getJSON(env, podKey(args.PodWebID), &pod)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, contract.Revertf("registerResource: pod %q not registered", args.PodWebID)
	}
	if pod.Owner != env.Sender {
		return nil, contract.Revertf("registerResource: sender %s does not own pod %q", env.Sender, args.PodWebID)
	}
	var existing ResourceRecord
	if ok, err := getJSON(env, resKey(args.ResourceIRI), &existing); err != nil {
		return nil, err
	} else if ok {
		return nil, contract.Revertf("registerResource: resource %q already registered", args.ResourceIRI)
	}

	pol := args.Policy
	if pol == nil {
		// Fall back to the pod's default policy, re-bound to the resource.
		if pod.DefaultPolicy == nil {
			return nil, contract.Revertf("registerResource: no policy given and pod has no default")
		}
		clone := pod.DefaultPolicy.Clone()
		clone.ID = args.ResourceIRI + "#policy"
		clone.ResourceIRI = args.ResourceIRI
		pol = clone
	}
	if err := pol.Validate(); err != nil {
		return nil, contract.Revertf("registerResource: invalid policy: %v", err)
	}
	if pol.ResourceIRI != args.ResourceIRI {
		return nil, contract.Revertf("registerResource: policy is bound to %q, not %q", pol.ResourceIRI, args.ResourceIRI)
	}

	rec := ResourceRecord{
		ResourceIRI:  args.ResourceIRI,
		PodWebID:     args.PodWebID,
		Location:     args.Location,
		Description:  args.Description,
		Owner:        env.Sender,
		Policy:       pol,
		RegisteredAt: env.Block.Time,
	}
	if err := setJSON(env, resKey(args.ResourceIRI), rec); err != nil {
		return nil, err
	}
	if err := env.Set(resByPodKey(args.PodWebID, args.ResourceIRI), []byte{1}); err != nil {
		return nil, err
	}
	payload, _ := json.Marshal(rec)
	if err := env.Emit(TopicResourceRegistered, args.ResourceIRI, payload); err != nil {
		return nil, err
	}
	polPayload, _ := json.Marshal(pol)
	if err := env.Emit(TopicPolicyPublished, args.ResourceIRI, polPayload); err != nil {
		return nil, err
	}
	return nil, nil
}

// --- policy modification (Fig. 2(5)) ---

func (c *Contract) updatePolicy(env *contract.Env, raw []byte) ([]byte, error) {
	var args UpdatePolicyArgs
	if err := json.Unmarshal(raw, &args); err != nil {
		return nil, contract.Revertf("bad args: %v", err)
	}
	if args.Policy == nil {
		return nil, contract.Revertf("updatePolicy: missing policy")
	}
	var rec ResourceRecord
	ok, err := getJSON(env, resKey(args.ResourceIRI), &rec)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, contract.Revertf("updatePolicy: resource %q not registered", args.ResourceIRI)
	}
	if rec.Owner != env.Sender {
		return nil, contract.Revertf("updatePolicy: sender %s does not own %q", env.Sender, args.ResourceIRI)
	}
	if err := args.Policy.Validate(); err != nil {
		return nil, contract.Revertf("updatePolicy: invalid policy: %v", err)
	}
	if args.Policy.ResourceIRI != args.ResourceIRI {
		return nil, contract.Revertf("updatePolicy: policy bound to %q, not %q", args.Policy.ResourceIRI, args.ResourceIRI)
	}
	if args.Policy.Version <= rec.Policy.Version {
		return nil, contract.Revertf("updatePolicy: version %d not greater than current %d",
			args.Policy.Version, rec.Policy.Version)
	}
	rec.Policy = args.Policy
	if err := setJSON(env, resKey(args.ResourceIRI), rec); err != nil {
		return nil, err
	}
	payload, _ := json.Marshal(args.Policy)
	if err := env.Emit(TopicPolicyUpdated, args.ResourceIRI, payload); err != nil {
		return nil, err
	}
	return nil, nil
}

func (c *Contract) withdrawResource(env *contract.Env, raw []byte) ([]byte, error) {
	var args WithdrawResourceArgs
	if err := json.Unmarshal(raw, &args); err != nil {
		return nil, contract.Revertf("bad args: %v", err)
	}
	var rec ResourceRecord
	ok, err := getJSON(env, resKey(args.ResourceIRI), &rec)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, contract.Revertf("withdrawResource: resource %q not registered", args.ResourceIRI)
	}
	if rec.Owner != env.Sender {
		return nil, contract.Revertf("withdrawResource: sender %s does not own %q", env.Sender, args.ResourceIRI)
	}
	if rec.Withdrawn {
		return nil, contract.Revertf("withdrawResource: already withdrawn")
	}
	rec.Withdrawn = true
	if err := setJSON(env, resKey(args.ResourceIRI), rec); err != nil {
		return nil, err
	}
	if err := env.Delete(resByPodKey(rec.PodWebID, args.ResourceIRI)); err != nil {
		return nil, err
	}
	payload, _ := json.Marshal(rec)
	if err := env.Emit(TopicResourceWithdrawn, args.ResourceIRI, payload); err != nil {
		return nil, err
	}
	return nil, nil
}

// --- device registration (TEE attestation) ---

func (c *Contract) registerDevice(env *contract.Env, raw []byte) ([]byte, error) {
	var args RegisterDeviceArgs
	if err := json.Unmarshal(raw, &args); err != nil {
		return nil, contract.Revertf("bad args: %v", err)
	}
	cert, err := cryptoutil.DecodeCertificate(args.Certificate)
	if err != nil {
		return nil, contract.Revertf("registerDevice: %v", err)
	}
	if err := cert.Verify(c.cfg.ManufacturerCAKey, c.cfg.ManufacturerCA, env.Block.Time); err != nil {
		return nil, contract.Revertf("registerDevice: certificate rejected: %v", err)
	}
	if cert.Subject != env.Sender {
		return nil, contract.Revertf("registerDevice: certificate subject %s is not the sender %s",
			cert.Subject, env.Sender)
	}
	measurementHex, ok := cert.Claims["measurement"]
	if !ok {
		return nil, contract.Revertf("registerDevice: certificate lacks a measurement claim")
	}
	mraw, err := hex.DecodeString(measurementHex)
	if err != nil || len(mraw) != 32 {
		return nil, contract.Revertf("registerDevice: malformed measurement claim")
	}
	var measurement cryptoutil.Hash
	copy(measurement[:], mraw)

	rec := DeviceRecord{
		Device:       env.Sender,
		DeviceKey:    cert.SubjectKey,
		Measurement:  measurement,
		RegisteredAt: env.Block.Time,
	}
	if err := setJSON(env, devKey(env.Sender), rec); err != nil {
		return nil, err
	}
	payload, _ := json.Marshal(rec)
	if err := env.Emit(TopicDeviceRegistered, env.Sender.String(), payload); err != nil {
		return nil, err
	}
	return nil, nil
}

// --- grants (resource access bookkeeping, Fig. 2(4)) ---

func (c *Contract) recordGrant(env *contract.Env, raw []byte) ([]byte, error) {
	var args RecordGrantArgs
	if err := json.Unmarshal(raw, &args); err != nil {
		return nil, contract.Revertf("bad args: %v", err)
	}
	var rec ResourceRecord
	ok, err := getJSON(env, resKey(args.ResourceIRI), &rec)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, contract.Revertf("recordGrant: resource %q not registered", args.ResourceIRI)
	}
	if rec.Withdrawn {
		return nil, contract.Revertf("recordGrant: resource %q is withdrawn from the market", args.ResourceIRI)
	}
	if rec.Owner != env.Sender {
		return nil, contract.Revertf("recordGrant: sender %s does not own %q", env.Sender, args.ResourceIRI)
	}
	var dev DeviceRecord
	if ok, err := getJSON(env, devKey(args.Device), &dev); err != nil {
		return nil, err
	} else if !ok {
		return nil, contract.Revertf("recordGrant: device %s not registered", args.Device)
	}
	if args.Purpose == "" {
		return nil, contract.Revertf("recordGrant: purpose is required")
	}
	if !rec.Policy.PermitsPurpose(args.Purpose) {
		return nil, contract.Revertf("recordGrant: purpose %q not permitted by policy v%d",
			args.Purpose, rec.Policy.Version)
	}
	g := Grant{
		ResourceIRI: args.ResourceIRI,
		Consumer:    args.Consumer,
		Device:      args.Device,
		Purpose:     args.Purpose,
		GrantedAt:   env.Block.Time,
	}
	if err := setJSON(env, grantKey(args.ResourceIRI, args.Device), g); err != nil {
		return nil, err
	}
	payload, _ := json.Marshal(g)
	if err := env.Emit(TopicGrantRecorded, args.ResourceIRI, payload); err != nil {
		return nil, err
	}
	return nil, nil
}

func (c *Contract) confirmRetrieval(env *contract.Env, raw []byte) ([]byte, error) {
	var args ConfirmRetrievalArgs
	if err := json.Unmarshal(raw, &args); err != nil {
		return nil, contract.Revertf("bad args: %v", err)
	}
	var g Grant
	ok, err := getJSON(env, grantKey(args.ResourceIRI, env.Sender), &g)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, contract.Revertf("confirmRetrieval: no grant for device %s on %q", env.Sender, args.ResourceIRI)
	}
	if g.Revoked {
		return nil, contract.Revertf("confirmRetrieval: grant revoked")
	}
	if !g.RetrievedAt.IsZero() {
		return nil, contract.Revertf("confirmRetrieval: already confirmed")
	}
	g.RetrievedAt = env.Block.Time
	if err := setJSON(env, grantKey(args.ResourceIRI, env.Sender), g); err != nil {
		return nil, err
	}
	payload, _ := json.Marshal(g)
	if err := env.Emit(TopicRetrievalConfirmed, args.ResourceIRI, payload); err != nil {
		return nil, err
	}
	return nil, nil
}

func (c *Contract) revokeGrant(env *contract.Env, raw []byte) ([]byte, error) {
	var args RevokeGrantArgs
	if err := json.Unmarshal(raw, &args); err != nil {
		return nil, contract.Revertf("bad args: %v", err)
	}
	var rec ResourceRecord
	ok, err := getJSON(env, resKey(args.ResourceIRI), &rec)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, contract.Revertf("revokeGrant: resource %q not registered", args.ResourceIRI)
	}
	if rec.Owner != env.Sender {
		return nil, contract.Revertf("revokeGrant: sender %s does not own %q", env.Sender, args.ResourceIRI)
	}
	var g Grant
	if ok, err := getJSON(env, grantKey(args.ResourceIRI, args.Device), &g); err != nil {
		return nil, err
	} else if !ok {
		return nil, contract.Revertf("revokeGrant: no grant for device %s", args.Device)
	}
	if g.Revoked {
		return nil, contract.Revertf("revokeGrant: already revoked")
	}
	g.Revoked = true
	if err := setJSON(env, grantKey(args.ResourceIRI, args.Device), g); err != nil {
		return nil, err
	}
	payload, _ := json.Marshal(g)
	if err := env.Emit(TopicGrantRevoked, args.ResourceIRI, payload); err != nil {
		return nil, err
	}
	return nil, nil
}

// --- policy monitoring (Fig. 2(6)) ---

func (c *Contract) requestMonitoring(env *contract.Env, raw []byte) ([]byte, error) {
	var args RequestMonitoringArgs
	if err := json.Unmarshal(raw, &args); err != nil {
		return nil, contract.Revertf("bad args: %v", err)
	}
	var rec ResourceRecord
	ok, err := getJSON(env, resKey(args.ResourceIRI), &rec)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, contract.Revertf("requestMonitoring: resource %q not registered", args.ResourceIRI)
	}
	if rec.Owner != env.Sender {
		return nil, contract.Revertf("requestMonitoring: sender %s does not own %q", env.Sender, args.ResourceIRI)
	}

	keys, err := env.Keys(grantPrefix(args.ResourceIRI))
	if err != nil {
		return nil, err
	}
	var targets []cryptoutil.Address
	for _, k := range keys {
		var g Grant
		if ok, err := getJSON(env, k, &g); err != nil {
			return nil, err
		} else if !ok {
			continue
		}
		if !g.Revoked && !g.RetrievedAt.IsZero() {
			targets = append(targets, g.Device)
		}
	}

	n, err := bumpCounter(env, roundSeqKey(args.ResourceIRI))
	if err != nil {
		return nil, err
	}
	round := MonitoringRound{
		Round:       n,
		ResourceIRI: args.ResourceIRI,
		RequestedAt: env.Block.Time,
		Targets:     targets,
	}
	if len(targets) == 0 {
		round.Closed = true
	}
	if err := setJSON(env, roundKey(args.ResourceIRI, n), round); err != nil {
		return nil, err
	}
	payload, _ := json.Marshal(round)
	if err := env.Emit(TopicMonitoringRequested, args.ResourceIRI, payload); err != nil {
		return nil, err
	}
	return json.Marshal(round)
}

func (c *Contract) submitEvidence(env *contract.Env, raw []byte) ([]byte, error) {
	var args SubmitEvidenceArgs
	if err := json.Unmarshal(raw, &args); err != nil {
		return nil, contract.Revertf("bad args: %v", err)
	}
	ev := args.Signed.Evidence

	var rec ResourceRecord
	ok, err := getJSON(env, resKey(ev.ResourceIRI), &rec)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, contract.Revertf("submitEvidence: resource %q not registered", ev.ResourceIRI)
	}
	var dev DeviceRecord
	if ok, err := getJSON(env, devKey(ev.Device), &dev); err != nil {
		return nil, err
	} else if !ok {
		return nil, contract.Revertf("submitEvidence: device %s not registered", ev.Device)
	}
	var g Grant
	if ok, err := getJSON(env, grantKey(ev.ResourceIRI, ev.Device), &g); err != nil {
		return nil, err
	} else if !ok {
		return nil, contract.Revertf("submitEvidence: no grant for device %s on %q", ev.Device, ev.ResourceIRI)
	}

	// Verify the device signature over the evidence.
	devPub, err := cryptoutil.ParsePublicKey(dev.DeviceKey)
	if err != nil {
		return nil, contract.Revertf("submitEvidence: stored device key corrupt: %v", err)
	}
	if !cryptoutil.Verify(devPub, ev.SigningBytes(), args.Signed.Signature) {
		return nil, contract.Revertf("submitEvidence: evidence signature invalid")
	}

	findings := c.checkCompliance(&rec, &g, &ev)

	seq, err := bumpCounter(env, evSeqKey(ev.ResourceIRI))
	if err != nil {
		return nil, err
	}
	record := EvidenceRecord{
		Seq:      seq,
		Evidence: ev,
		Verified: true,
		Stored:   env.Block.Time,
		Round:    ev.Round,
		Findings: findings,
	}
	if err := setJSON(env, evKey(ev.ResourceIRI, seq), record); err != nil {
		return nil, err
	}
	evPayload, _ := json.Marshal(record)
	if err := env.Emit(TopicEvidenceRecorded, ev.ResourceIRI, evPayload); err != nil {
		return nil, err
	}

	for _, kind := range findings {
		if err := c.recordViolation(env, ev.ResourceIRI, ev.Device, kind,
			fmt.Sprintf("evidence #%d round %d", seq, ev.Round), ev.Round); err != nil {
			return nil, err
		}
	}

	// Update the monitoring round, if this evidence answers one.
	if ev.Round > 0 {
		var round MonitoringRound
		if ok, err := getJSON(env, roundKey(ev.ResourceIRI, ev.Round), &round); err != nil {
			return nil, err
		} else if ok && !round.Closed {
			already := false
			for _, r := range round.Responded {
				if r == ev.Device {
					already = true
					break
				}
			}
			if !already {
				round.Responded = append(round.Responded, ev.Device)
			}
			if len(round.Responded) >= len(round.Targets) {
				round.Closed = true
			}
			if err := setJSON(env, roundKey(ev.ResourceIRI, ev.Round), round); err != nil {
				return nil, err
			}
		}
	}
	return json.Marshal(record)
}

// checkCompliance evaluates evidence against the current policy and grant.
func (c *Contract) checkCompliance(rec *ResourceRecord, g *Grant, ev *Evidence) []ViolationKind {
	var findings []ViolationKind
	pol := rec.Policy

	// Stale policy enforcement.
	if pol.Version > ev.PolicyVersion && pol.Version-ev.PolicyVersion > c.cfg.MaxPolicyLag {
		findings = append(findings, ViolationStalePolicy)
	}

	// Retention: the copy must be gone by its deadline.
	retrievedAt := g.RetrievedAt
	if retrievedAt.IsZero() {
		retrievedAt = ev.RetrievedAt
	}
	if deadline, has := pol.DeleteDeadline(retrievedAt); has {
		if ev.StillStored && ev.GeneratedAt.After(deadline) {
			findings = append(findings, ViolationRetention)
		}
		if !ev.StillStored && !ev.DeletedAt.IsZero() && ev.DeletedAt.After(deadline) {
			findings = append(findings, ViolationRetention)
		}
	}

	// Purpose: every allowed use must match the policy's purposes.
	for _, u := range ev.Entries {
		if u.Allowed && !pol.PermitsPurpose(u.Purpose) {
			findings = append(findings, ViolationPurpose)
			break
		}
	}

	// Usage cap.
	if pol.MaxUses > 0 && ev.UseCount > pol.MaxUses {
		findings = append(findings, ViolationMaxUses)
	}
	return findings
}

func (c *Contract) recordViolation(env *contract.Env, iri string, device cryptoutil.Address, kind ViolationKind, detail string, round uint64) error {
	seq, err := bumpCounter(env, violSeqKey(iri))
	if err != nil {
		return err
	}
	v := Violation{
		Seq:         seq,
		ResourceIRI: iri,
		Device:      device,
		Kind:        kind,
		Detail:      detail,
		DetectedAt:  env.Block.Time,
		Round:       round,
	}
	if err := setJSON(env, violKey(iri, seq), v); err != nil {
		return err
	}
	payload, _ := json.Marshal(v)
	return env.Emit(TopicViolationDetected, iri, payload)
}

func (c *Contract) reportUnresponsive(env *contract.Env, raw []byte) ([]byte, error) {
	var args ReportUnresponsiveArgs
	if err := json.Unmarshal(raw, &args); err != nil {
		return nil, contract.Revertf("bad args: %v", err)
	}
	var rec ResourceRecord
	ok, err := getJSON(env, resKey(args.ResourceIRI), &rec)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, contract.Revertf("reportUnresponsive: resource %q not registered", args.ResourceIRI)
	}
	if rec.Owner != env.Sender {
		return nil, contract.Revertf("reportUnresponsive: sender %s does not own %q", env.Sender, args.ResourceIRI)
	}
	var round MonitoringRound
	if ok, err := getJSON(env, roundKey(args.ResourceIRI, args.Round), &round); err != nil {
		return nil, err
	} else if !ok {
		return nil, contract.Revertf("reportUnresponsive: round %d not found", args.Round)
	}
	if round.Closed {
		return nil, contract.Revertf("reportUnresponsive: round %d already closed", args.Round)
	}
	responded := make(map[cryptoutil.Address]bool, len(round.Responded))
	for _, r := range round.Responded {
		responded[r] = true
	}
	for _, target := range round.Targets {
		if responded[target] {
			continue
		}
		if err := c.recordViolation(env, args.ResourceIRI, target, ViolationUnresponsive,
			fmt.Sprintf("no evidence for round %d", args.Round), args.Round); err != nil {
			return nil, err
		}
	}
	round.Closed = true
	if err := setJSON(env, roundKey(args.ResourceIRI, args.Round), round); err != nil {
		return nil, err
	}
	return json.Marshal(round)
}

// --- read-only queries ---

// Read implements contract.Contract.
func (c *Contract) Read(env *contract.ReadEnv, method string, args []byte) ([]byte, error) {
	switch method {
	case "getPod":
		var a GetPodArgs
		if err := json.Unmarshal(args, &a); err != nil {
			return nil, fmt.Errorf("distexchange: bad args: %w", err)
		}
		return readRecord[PodRecord](env, podKey(a.OwnerWebID))
	case "getResource":
		var a GetResourceArgs
		if err := json.Unmarshal(args, &a); err != nil {
			return nil, fmt.Errorf("distexchange: bad args: %w", err)
		}
		return readRecord[ResourceRecord](env, resKey(a.ResourceIRI))
	case "getDevice":
		var a GetDeviceArgs
		if err := json.Unmarshal(args, &a); err != nil {
			return nil, fmt.Errorf("distexchange: bad args: %w", err)
		}
		return readRecord[DeviceRecord](env, devKey(a.Device))
	case "listResources":
		return c.listResources(env, args)
	case "getGrants":
		var a GetGrantsArgs
		if err := json.Unmarshal(args, &a); err != nil {
			return nil, fmt.Errorf("distexchange: bad args: %w", err)
		}
		return readList[Grant](env, grantPrefix(a.ResourceIRI))
	case "getViolations":
		var a GetViolationsArgs
		if err := json.Unmarshal(args, &a); err != nil {
			return nil, fmt.Errorf("distexchange: bad args: %w", err)
		}
		return readList[Violation](env, "viol/"+a.ResourceIRI+"|")
	case "getEvidence":
		var a GetEvidenceArgs
		if err := json.Unmarshal(args, &a); err != nil {
			return nil, fmt.Errorf("distexchange: bad args: %w", err)
		}
		return readList[EvidenceRecord](env, "ev/"+a.ResourceIRI+"|")
	case "getMonitoringRound":
		var a GetMonitoringRoundArgs
		if err := json.Unmarshal(args, &a); err != nil {
			return nil, fmt.Errorf("distexchange: bad args: %w", err)
		}
		return readRecord[MonitoringRound](env, roundKey(a.ResourceIRI, a.Round))
	default:
		return nil, fmt.Errorf("distexchange: unknown query %q", method)
	}
}

// ErrNotFound is returned (wrapped) by queries for missing records.
var ErrNotFound = fmt.Errorf("distexchange: not found")

func readRecord[T any](env *contract.ReadEnv, key string) ([]byte, error) {
	raw, ok := env.Get(key)
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, key)
	}
	return raw, nil
}

func readList[T any](env *contract.ReadEnv, prefix string) ([]byte, error) {
	keys := env.Keys(prefix)
	out := make([]T, 0, len(keys))
	for _, k := range keys {
		raw, ok := env.Get(k)
		if !ok {
			continue
		}
		var v T
		if err := json.Unmarshal(raw, &v); err != nil {
			return nil, fmt.Errorf("distexchange: corrupt record at %s: %w", k, err)
		}
		out = append(out, v)
	}
	return json.Marshal(out)
}

func (c *Contract) listResources(env *contract.ReadEnv, args []byte) ([]byte, error) {
	var a ListResourcesArgs
	if err := json.Unmarshal(args, &a); err != nil {
		return nil, fmt.Errorf("distexchange: bad args: %w", err)
	}
	var out []ResourceRecord
	if a.PodWebID != "" {
		for _, k := range env.Keys("resbypod/" + a.PodWebID + "|") {
			iri := k[len("resbypod/"+a.PodWebID+"|"):]
			raw, ok := env.Get(resKey(iri))
			if !ok {
				continue
			}
			var rec ResourceRecord
			if err := json.Unmarshal(raw, &rec); err != nil {
				return nil, fmt.Errorf("distexchange: corrupt resource %q: %w", iri, err)
			}
			out = append(out, rec)
		}
	} else {
		for _, k := range env.Keys("res/") {
			raw, ok := env.Get(k)
			if !ok {
				continue
			}
			var rec ResourceRecord
			if err := json.Unmarshal(raw, &rec); err != nil {
				return nil, fmt.Errorf("distexchange: corrupt resource at %q: %w", k, err)
			}
			if rec.Withdrawn {
				continue
			}
			out = append(out, rec)
		}
	}
	if out == nil {
		out = []ResourceRecord{}
	}
	return json.Marshal(out)
}
