package distexchange

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"

	"repro/internal/chain"
	"repro/internal/cryptoutil"
)

// Backend abstracts the blockchain node access the client needs. It is
// satisfied by *chain.Node directly and by the oracle components that
// relay to one.
type Backend interface {
	SubmitTx(tx *chain.Tx) (cryptoutil.Hash, error)
	WaitForReceipt(ctx context.Context, txHash cryptoutil.Hash) (*chain.Receipt, error)
	Query(contract cryptoutil.Address, method string, args []byte) ([]byte, error)
	NonceFor(addr cryptoutil.Address) uint64
}

var _ Backend = (*chain.Node)(nil)

// DefaultGasLimit is the per-transaction gas limit used by the client.
// DE App methods are small; evidence submissions with long usage logs are
// the largest and stay well under this bound.
const DefaultGasLimit = 5_000_000

// Client is a typed API over the DE App contract for one key holder.
// It is safe for concurrent use.
type Client struct {
	backend  Backend
	key      *cryptoutil.KeyPair
	contract cryptoutil.Address
	gas      uint64

	mu sync.Mutex // serializes nonce acquisition + submission
}

// NewClient builds a client for the DE App deployed at the conventional
// address (AddressFor(ContractName) via the contract runtime).
func NewClient(backend Backend, key *cryptoutil.KeyPair, contractAddr cryptoutil.Address) *Client {
	return &Client{backend: backend, key: key, contract: contractAddr, gas: DefaultGasLimit}
}

// Address returns the client's sender address.
func (c *Client) Address() cryptoutil.Address { return c.key.Address() }

// Key returns the client's key pair (used by TEE components that sign
// evidence with the same identity).
func (c *Client) Key() *cryptoutil.KeyPair { return c.key }

// RevertError is returned when a transaction is included but reverted.
type RevertError struct {
	Method string
	Reason string
}

// Error implements error.
func (e *RevertError) Error() string {
	return fmt.Sprintf("distexchange: %s reverted: %s", e.Method, e.Reason)
}

// call submits a transaction and waits for its receipt.
func (c *Client) call(ctx context.Context, method string, args any) (*chain.Receipt, error) {
	c.mu.Lock()
	nonce := c.backend.NonceFor(c.key.Address())
	tx, err := chain.NewTx(c.key, nonce, c.contract, method, args, c.gas)
	if err != nil {
		c.mu.Unlock()
		return nil, err
	}
	hash, err := c.backend.SubmitTx(tx)
	c.mu.Unlock()
	if err != nil {
		return nil, fmt.Errorf("distexchange: submit %s: %w", method, err)
	}
	receipt, err := c.backend.WaitForReceipt(ctx, hash)
	if err != nil {
		return nil, fmt.Errorf("distexchange: wait %s: %w", method, err)
	}
	if !receipt.Succeeded() {
		return receipt, &RevertError{Method: method, Reason: receipt.Err}
	}
	return receipt, nil
}

// query runs a read-only method and decodes the JSON reply into out.
func (c *Client) query(method string, args, out any) error {
	raw, err := json.Marshal(args)
	if err != nil {
		return err
	}
	reply, err := c.backend.Query(c.contract, method, raw)
	if err != nil {
		return err
	}
	return json.Unmarshal(reply, out)
}

// RegisterPod performs the on-chain half of pod initiation (Fig. 2(1)).
func (c *Client) RegisterPod(ctx context.Context, args RegisterPodArgs) (*chain.Receipt, error) {
	return c.call(ctx, "registerPod", args)
}

// RegisterResource performs resource initiation (Fig. 2(2)).
func (c *Client) RegisterResource(ctx context.Context, args RegisterResourceArgs) (*chain.Receipt, error) {
	return c.call(ctx, "registerResource", args)
}

// WithdrawResource removes a resource from the market index; existing
// grants and monitoring remain valid.
func (c *Client) WithdrawResource(ctx context.Context, resourceIRI string) (*chain.Receipt, error) {
	return c.call(ctx, "withdrawResource", WithdrawResourceArgs{ResourceIRI: resourceIRI})
}

// UpdatePolicy performs policy modification (Fig. 2(5)).
func (c *Client) UpdatePolicy(ctx context.Context, args UpdatePolicyArgs) (*chain.Receipt, error) {
	return c.call(ctx, "updatePolicy", args)
}

// RegisterDevice registers the sender as an attested TEE device.
func (c *Client) RegisterDevice(ctx context.Context, certificate []byte) (*chain.Receipt, error) {
	return c.call(ctx, "registerDevice", RegisterDeviceArgs{Certificate: certificate})
}

// RecordGrant records an access grant for a device.
func (c *Client) RecordGrant(ctx context.Context, args RecordGrantArgs) (*chain.Receipt, error) {
	return c.call(ctx, "recordGrant", args)
}

// ConfirmRetrieval confirms the sender device obtained its copy.
func (c *Client) ConfirmRetrieval(ctx context.Context, resourceIRI string) (*chain.Receipt, error) {
	return c.call(ctx, "confirmRetrieval", ConfirmRetrievalArgs{ResourceIRI: resourceIRI})
}

// RevokeGrant revokes a device's grant.
func (c *Client) RevokeGrant(ctx context.Context, args RevokeGrantArgs) (*chain.Receipt, error) {
	return c.call(ctx, "revokeGrant", args)
}

// RequestMonitoring starts a monitoring round (Fig. 2(6)) and returns it.
func (c *Client) RequestMonitoring(ctx context.Context, resourceIRI string) (MonitoringRound, error) {
	receipt, err := c.call(ctx, "requestMonitoring", RequestMonitoringArgs{ResourceIRI: resourceIRI})
	if err != nil {
		return MonitoringRound{}, err
	}
	var round MonitoringRound
	if err := json.Unmarshal(receipt.Return, &round); err != nil {
		return MonitoringRound{}, fmt.Errorf("distexchange: decode round: %w", err)
	}
	return round, nil
}

// SubmitEvidence delivers signed compliance evidence.
func (c *Client) SubmitEvidence(ctx context.Context, signed SignedEvidence) (EvidenceRecord, error) {
	receipt, err := c.call(ctx, "submitEvidence", SubmitEvidenceArgs{Signed: signed})
	if err != nil {
		return EvidenceRecord{}, err
	}
	var rec EvidenceRecord
	if err := json.Unmarshal(receipt.Return, &rec); err != nil {
		return EvidenceRecord{}, fmt.Errorf("distexchange: decode evidence record: %w", err)
	}
	return rec, nil
}

// ReportUnresponsive closes a round, flagging silent holders.
func (c *Client) ReportUnresponsive(ctx context.Context, resourceIRI string, round uint64) (*chain.Receipt, error) {
	return c.call(ctx, "reportUnresponsive", ReportUnresponsiveArgs{ResourceIRI: resourceIRI, Round: round})
}

// GetPod fetches a pod record.
func (c *Client) GetPod(ownerWebID string) (PodRecord, error) {
	var rec PodRecord
	err := c.query("getPod", GetPodArgs{OwnerWebID: ownerWebID}, &rec)
	return rec, err
}

// GetResource fetches a resource record with its current policy
// (resource indexing, Fig. 2(3)).
func (c *Client) GetResource(resourceIRI string) (ResourceRecord, error) {
	var rec ResourceRecord
	err := c.query("getResource", GetResourceArgs{ResourceIRI: resourceIRI}, &rec)
	return rec, err
}

// ListResources lists the resource index, optionally for one pod.
func (c *Client) ListResources(podWebID string) ([]ResourceRecord, error) {
	var out []ResourceRecord
	err := c.query("listResources", ListResourcesArgs{PodWebID: podWebID}, &out)
	return out, err
}

// GetGrants lists grants for a resource.
func (c *Client) GetGrants(resourceIRI string) ([]Grant, error) {
	var out []Grant
	err := c.query("getGrants", GetGrantsArgs{ResourceIRI: resourceIRI}, &out)
	return out, err
}

// GetDevice fetches a device record.
func (c *Client) GetDevice(device cryptoutil.Address) (DeviceRecord, error) {
	var rec DeviceRecord
	err := c.query("getDevice", GetDeviceArgs{Device: device}, &rec)
	return rec, err
}

// GetViolations lists violations recorded for a resource.
func (c *Client) GetViolations(resourceIRI string) ([]Violation, error) {
	var out []Violation
	err := c.query("getViolations", GetViolationsArgs{ResourceIRI: resourceIRI}, &out)
	return out, err
}

// GetEvidence lists verified evidence records for a resource.
func (c *Client) GetEvidence(resourceIRI string) ([]EvidenceRecord, error) {
	var out []EvidenceRecord
	err := c.query("getEvidence", GetEvidenceArgs{ResourceIRI: resourceIRI}, &out)
	return out, err
}

// GetMonitoringRound fetches a monitoring round record.
func (c *Client) GetMonitoringRound(resourceIRI string, round uint64) (MonitoringRound, error) {
	var rec MonitoringRound
	err := c.query("getMonitoringRound", GetMonitoringRoundArgs{ResourceIRI: resourceIRI, Round: round}, &rec)
	return rec, err
}
