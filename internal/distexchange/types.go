// Package distexchange implements the DistExchange application (DE App) of
// the paper: the blockchain-resident component that records where data
// resides (pod and resource locations), declares the applicable usage
// policies, tracks which consumer devices hold copies, and monitors
// compliance with the policies — detecting and recording violations.
//
// The contract (see Contract) runs on the contract.Runtime; Client offers
// a typed Go API over a chain backend for off-chain components (pod
// managers and TEEs reach it through the oracles in package oracle).
package distexchange

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/cryptoutil"
	"repro/internal/policy"
)

// ContractName is the runtime deployment name of the DE App.
const ContractName = "distexchange"

// Event topics emitted by the DE App.
const (
	TopicPodRegistered       = "PodRegistered"
	TopicResourceRegistered  = "ResourceRegistered"
	TopicPolicyPublished     = "PolicyPublished"
	TopicPolicyUpdated       = "PolicyUpdated"
	TopicDeviceRegistered    = "DeviceRegistered"
	TopicGrantRecorded       = "GrantRecorded"
	TopicGrantRevoked        = "GrantRevoked"
	TopicRetrievalConfirmed  = "RetrievalConfirmed"
	TopicMonitoringRequested = "MonitoringRequested"
	TopicEvidenceRecorded    = "EvidenceRecorded"
	TopicViolationDetected   = "ViolationDetected"
	TopicResourceWithdrawn   = "ResourceWithdrawn"
)

// PodRecord is the on-chain registration of a Solid pod.
type PodRecord struct {
	// OwnerWebID is the pod owner's WebID.
	OwnerWebID string `json:"ownerWebID"`
	// Location is the pod's root URL.
	Location string `json:"location"`
	// Owner is the blockchain address controlling the registration.
	Owner cryptoutil.Address `json:"owner"`
	// DefaultPolicy is the pod-wide default usage policy.
	DefaultPolicy *policy.Policy `json:"defaultPolicy,omitempty"`
	// RegisteredAt is the block timestamp of registration.
	RegisteredAt time.Time `json:"registeredAt"`
}

// ResourceRecord is the on-chain index entry for a published resource.
type ResourceRecord struct {
	// ResourceIRI identifies the resource.
	ResourceIRI string `json:"resource"`
	// PodWebID names the owning pod.
	PodWebID string `json:"podWebID"`
	// Location is the resource's web location inside the pod.
	Location string `json:"location"`
	// Description is free-form market metadata.
	Description string `json:"description,omitempty"`
	// Owner is the publishing blockchain address.
	Owner cryptoutil.Address `json:"owner"`
	// Policy is the currently applicable usage policy.
	Policy *policy.Policy `json:"policy"`
	// RegisteredAt is the block timestamp of publication.
	RegisteredAt time.Time `json:"registeredAt"`
	// Withdrawn marks resources removed from the market index; existing
	// copies remain governed by the last published policy.
	Withdrawn bool `json:"withdrawn,omitempty"`
}

// DeviceRecord registers a consumer TEE device, rooted in a manufacturer
// certificate.
type DeviceRecord struct {
	// Device is the device's blockchain address (derived from its key).
	Device cryptoutil.Address `json:"device"`
	// DeviceKey is the device public key used to verify evidence.
	DeviceKey []byte `json:"deviceKey"`
	// Measurement is the attested TEE code measurement.
	Measurement cryptoutil.Hash `json:"measurement"`
	// RegisteredAt is the block timestamp of registration.
	RegisteredAt time.Time `json:"registeredAt"`
}

// Grant records that a consumer device was granted access to (and may hold
// a copy of) a resource.
type Grant struct {
	// ResourceIRI is the granted resource.
	ResourceIRI string `json:"resource"`
	// Consumer is the consumer's blockchain address.
	Consumer cryptoutil.Address `json:"consumer"`
	// Device is the consumer's TEE device address.
	Device cryptoutil.Address `json:"device"`
	// Purpose is the consumer's declared purpose of use.
	Purpose policy.Purpose `json:"purpose"`
	// GrantedAt is when the grant was recorded on-chain.
	GrantedAt time.Time `json:"grantedAt"`
	// RetrievedAt is when the device confirmed physical retrieval (zero
	// until confirmed).
	RetrievedAt time.Time `json:"retrievedAt,omitempty"`
	// Revoked marks administratively revoked grants.
	Revoked bool `json:"revoked,omitempty"`
}

// UsageEntry is one use of a resource copy, logged by the TEE.
type UsageEntry struct {
	At      time.Time      `json:"at"`
	Action  policy.Action  `json:"action"`
	Purpose policy.Purpose `json:"purpose"`
	// Allowed records the TEE's own policy decision for the use.
	Allowed bool `json:"allowed"`
}

// Evidence is the compliance report a TEE produces during policy
// monitoring (Fig. 2(6)).
type Evidence struct {
	// ResourceIRI is the monitored resource.
	ResourceIRI string `json:"resource"`
	// Device is the reporting TEE device.
	Device cryptoutil.Address `json:"device"`
	// Round is the monitoring round this evidence answers.
	Round uint64 `json:"round"`
	// PolicyVersion is the policy version the TEE is enforcing.
	PolicyVersion uint64 `json:"policyVersion"`
	// StillStored reports whether the copy is still in trusted storage.
	StillStored bool `json:"stillStored"`
	// DeletedAt is when the copy was deleted (zero if StillStored).
	DeletedAt time.Time `json:"deletedAt,omitempty"`
	// RetrievedAt is when the copy was originally obtained.
	RetrievedAt time.Time `json:"retrievedAt"`
	// UseCount is the total number of uses so far.
	UseCount uint64 `json:"useCount"`
	// Entries lists individual uses (may be capped by the TEE).
	Entries []UsageEntry `json:"entries,omitempty"`
	// GeneratedAt is the TEE-local generation time.
	GeneratedAt time.Time `json:"generatedAt"`
}

// SigningBytes returns the deterministic encoding signed by the device.
func (e *Evidence) SigningBytes() []byte {
	var b strings.Builder
	fmt.Fprintf(&b, "evidence|%s|%s|%d|%d|%t|%d|%d|%d|%d|",
		e.ResourceIRI, e.Device, e.Round, e.PolicyVersion, e.StillStored,
		e.DeletedAt.UnixNano(), e.RetrievedAt.UnixNano(), e.UseCount, e.GeneratedAt.UnixNano())
	for _, u := range e.Entries {
		fmt.Fprintf(&b, "%d,%s,%s,%t;", u.At.UnixNano(), u.Action, u.Purpose, u.Allowed)
	}
	return []byte(b.String())
}

// SignedEvidence bundles evidence with the device signature.
type SignedEvidence struct {
	Evidence Evidence `json:"evidence"`
	// Signature is the device's ECDSA signature over Evidence.SigningBytes.
	Signature []byte `json:"signature"`
}

// ViolationKind classifies a detected policy violation.
type ViolationKind string

// Violation kinds detected by the DE App.
const (
	// ViolationRetention: the copy outlived its deletion deadline.
	ViolationRetention ViolationKind = "retention"
	// ViolationPurpose: a use was performed for a disallowed purpose.
	ViolationPurpose ViolationKind = "purpose"
	// ViolationMaxUses: the use count exceeded the policy's cap.
	ViolationMaxUses ViolationKind = "max-uses"
	// ViolationUnresponsive: a holder failed to answer a monitoring round.
	ViolationUnresponsive ViolationKind = "unresponsive"
	// ViolationStalePolicy: the holder enforces an outdated policy version
	// beyond the allowed lag.
	ViolationStalePolicy ViolationKind = "stale-policy"
)

// Violation is an on-chain violation record.
type Violation struct {
	// Seq is the per-resource violation sequence number.
	Seq uint64 `json:"seq"`
	// ResourceIRI is the violated resource.
	ResourceIRI string `json:"resource"`
	// Device is the offending holder.
	Device cryptoutil.Address `json:"device"`
	// Kind classifies the violation.
	Kind ViolationKind `json:"kind"`
	// Detail is a human-readable explanation.
	Detail string `json:"detail"`
	// DetectedAt is the block timestamp of detection.
	DetectedAt time.Time `json:"detectedAt"`
	// Round is the monitoring round that surfaced it (0 if none).
	Round uint64 `json:"round,omitempty"`
}

// MonitoringRound is the on-chain record of a Fig. 2(6) monitoring run.
type MonitoringRound struct {
	// Round is the per-resource round number, starting at 1.
	Round uint64 `json:"round"`
	// ResourceIRI is the monitored resource.
	ResourceIRI string `json:"resource"`
	// RequestedAt is the block timestamp of the request.
	RequestedAt time.Time `json:"requestedAt"`
	// Targets are the devices expected to report.
	Targets []cryptoutil.Address `json:"targets"`
	// Responded are the devices that already reported.
	Responded []cryptoutil.Address `json:"responded,omitempty"`
	// Closed marks completed rounds.
	Closed bool `json:"closed,omitempty"`
}

// --- Method argument and result types (the contract ABI). ---

// RegisterPodArgs registers a pod (Fig. 2(1), pod initiation).
type RegisterPodArgs struct {
	OwnerWebID    string         `json:"ownerWebID"`
	Location      string         `json:"location"`
	DefaultPolicy *policy.Policy `json:"defaultPolicy,omitempty"`
}

// RegisterResourceArgs publishes a resource (Fig. 2(2), resource
// initiation).
type RegisterResourceArgs struct {
	ResourceIRI string         `json:"resource"`
	PodWebID    string         `json:"podWebID"`
	Location    string         `json:"location"`
	Description string         `json:"description,omitempty"`
	Policy      *policy.Policy `json:"policy,omitempty"`
}

// WithdrawResourceArgs removes a resource from the market index. Grants
// and monitoring history survive: holders still hold copies under the
// last published policy, and the owner can keep monitoring them, but no
// new grants can be recorded and indexing no longer finds the resource.
type WithdrawResourceArgs struct {
	ResourceIRI string `json:"resource"`
}

// UpdatePolicyArgs replaces a resource's policy (Fig. 2(5)).
type UpdatePolicyArgs struct {
	ResourceIRI string         `json:"resource"`
	Policy      *policy.Policy `json:"policy"`
}

// RegisterDeviceArgs registers a TEE device with its attestation
// certificate chain (certificate issued by the trusted manufacturer CA).
type RegisterDeviceArgs struct {
	// Certificate is the JSON-encoded manufacturer certificate binding the
	// device key to its measurement.
	Certificate []byte `json:"certificate"`
}

// RecordGrantArgs records that access was granted to a device.
type RecordGrantArgs struct {
	ResourceIRI string             `json:"resource"`
	Consumer    cryptoutil.Address `json:"consumer"`
	Device      cryptoutil.Address `json:"device"`
	Purpose     policy.Purpose     `json:"purpose"`
}

// ConfirmRetrievalArgs confirms physical retrieval by the sender device.
type ConfirmRetrievalArgs struct {
	ResourceIRI string `json:"resource"`
}

// RevokeGrantArgs revokes a device's grant.
type RevokeGrantArgs struct {
	ResourceIRI string             `json:"resource"`
	Device      cryptoutil.Address `json:"device"`
}

// RequestMonitoringArgs starts a monitoring round (Fig. 2(6)).
type RequestMonitoringArgs struct {
	ResourceIRI string `json:"resource"`
}

// SubmitEvidenceArgs delivers signed evidence for a round.
type SubmitEvidenceArgs struct {
	Signed SignedEvidence `json:"signed"`
}

// ReportUnresponsiveArgs closes a round, flagging non-reporting targets.
type ReportUnresponsiveArgs struct {
	ResourceIRI string `json:"resource"`
	Round       uint64 `json:"round"`
}

// GetPodArgs, GetResourceArgs, etc. parameterize read-only queries.
type (
	// GetPodArgs fetches a pod record.
	GetPodArgs struct {
		OwnerWebID string `json:"ownerWebID"`
	}
	// GetResourceArgs fetches a resource record (resource indexing,
	// Fig. 2(3)).
	GetResourceArgs struct {
		ResourceIRI string `json:"resource"`
	}
	// ListResourcesArgs lists the resource index.
	ListResourcesArgs struct {
		// PodWebID optionally restricts to one pod's resources.
		PodWebID string `json:"podWebID,omitempty"`
	}
	// GetGrantsArgs lists grants for a resource.
	GetGrantsArgs struct {
		ResourceIRI string `json:"resource"`
	}
	// GetDeviceArgs fetches a device record.
	GetDeviceArgs struct {
		Device cryptoutil.Address `json:"device"`
	}
	// GetViolationsArgs lists violations for a resource.
	GetViolationsArgs struct {
		ResourceIRI string `json:"resource"`
	}
	// GetEvidenceArgs lists recorded evidence for a resource.
	GetEvidenceArgs struct {
		ResourceIRI string `json:"resource"`
	}
	// GetMonitoringRoundArgs fetches one monitoring round.
	GetMonitoringRoundArgs struct {
		ResourceIRI string `json:"resource"`
		Round       uint64 `json:"round"`
	}
)

// EvidenceRecord is a stored, verified evidence submission.
type EvidenceRecord struct {
	Seq      uint64          `json:"seq"`
	Evidence Evidence        `json:"evidence"`
	Verified bool            `json:"verified"`
	Stored   time.Time       `json:"stored"`
	Round    uint64          `json:"round"`
	Findings []ViolationKind `json:"findings,omitempty"`
}
