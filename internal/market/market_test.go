package market

import (
	"errors"
	"testing"
	"time"

	"repro/internal/cryptoutil"
	"repro/internal/simclock"
)

var t0 = time.Date(2023, 10, 9, 0, 0, 0, 0, time.UTC)

func newMarket(t *testing.T) (*Service, *simclock.Sim) {
	t.Helper()
	clk := simclock.NewSim(t0)
	svc, err := NewService("datamarket", clk)
	if err != nil {
		t.Fatal(err)
	}
	return svc, clk
}

func TestRegisterAndSubscribe(t *testing.T) {
	svc, _ := newMarket(t)
	alice := cryptoutil.MustGenerateKey()
	if err := svc.Register("https://alice.pod/profile#me", "alice@example.org", alice.Address(), alice.PublicBytes()); err != nil {
		t.Fatal(err)
	}
	if err := svc.Register("https://alice.pod/profile#me", "x", alice.Address(), alice.PublicBytes()); !errors.Is(err, ErrAlreadyExists) {
		t.Fatalf("duplicate register: %v", err)
	}
	if err := svc.Subscribe("https://alice.pod/profile#me", PlanBasic); err != nil {
		t.Fatal(err)
	}
	if err := svc.Subscribe("https://nobody", PlanBasic); !errors.Is(err, ErrNoAccount) {
		t.Fatalf("subscribe unknown: %v", err)
	}
	acct, err := svc.Account("https://alice.pod/profile#me")
	if err != nil {
		t.Fatal(err)
	}
	if acct.Plan != PlanBasic || acct.Contact != "alice@example.org" {
		t.Fatalf("account = %+v", acct)
	}
}

func TestPayFeeIssuesValidCertificate(t *testing.T) {
	svc, clk := newMarket(t)
	alice := cryptoutil.MustGenerateKey()
	webID := "https://alice.pod/profile#me"
	resource := "https://bob.pod/medical/ds1.ttl"
	if err := svc.Register(webID, "c", alice.Address(), alice.PublicBytes()); err != nil {
		t.Fatal(err)
	}

	// Fee payment requires a subscription.
	if _, err := svc.PayFee(webID, resource); !errors.Is(err, ErrNotSubscribed) {
		t.Fatalf("unsubscribed PayFee: %v", err)
	}
	if err := svc.Subscribe(webID, PlanBasic); err != nil {
		t.Fatal(err)
	}
	cert, err := svc.PayFee(webID, resource)
	if err != nil {
		t.Fatal(err)
	}

	v := VerifierFor(svc)
	raw, err := cert.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if err := v.Check(raw, alice.PublicBytes(), resource, clk.Now().Add(time.Hour)); err != nil {
		t.Fatalf("certificate check: %v", err)
	}

	// Fees accumulate.
	acct, _ := svc.Account(webID)
	if acct.FeesPaid != FeeFor(PlanBasic) {
		t.Fatalf("FeesPaid = %d", acct.FeesPaid)
	}
	if svc.Payments() != 1 {
		t.Fatalf("Payments = %d", svc.Payments())
	}
}

func TestVerifierRejections(t *testing.T) {
	svc, clk := newMarket(t)
	alice := cryptoutil.MustGenerateKey()
	webID := "https://alice.pod/profile#me"
	resource := "https://bob.pod/medical/ds1.ttl"
	if err := svc.Register(webID, "c", alice.Address(), alice.PublicBytes()); err != nil {
		t.Fatal(err)
	}
	if err := svc.Subscribe(webID, PlanPremium); err != nil {
		t.Fatal(err)
	}
	cert, err := svc.PayFee(webID, resource)
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := cert.Encode()
	v := VerifierFor(svc)
	now := clk.Now().Add(time.Minute)

	t.Run("wrong resource", func(t *testing.T) {
		if err := v.Check(raw, alice.PublicBytes(), "https://bob.pod/other", now); err == nil {
			t.Fatal("certificate accepted for another resource")
		}
	})
	t.Run("stolen certificate", func(t *testing.T) {
		eve := cryptoutil.MustGenerateKey()
		if err := v.Check(raw, eve.PublicBytes(), resource, now); !errors.Is(err, ErrWrongRecipient) {
			t.Fatalf("stolen certificate: %v", err)
		}
	})
	t.Run("expired certificate", func(t *testing.T) {
		if err := v.Check(raw, alice.PublicBytes(), resource, now.Add(CertificateTTL+time.Hour)); err == nil {
			t.Fatal("expired certificate accepted")
		}
	})
	t.Run("wrong market", func(t *testing.T) {
		other, err := NewService("impostor-market", clk)
		if err != nil {
			t.Fatal(err)
		}
		if err := VerifierFor(other).Check(raw, alice.PublicBytes(), resource, now); err == nil {
			t.Fatal("certificate from another market accepted")
		}
	})
	t.Run("garbage certificate", func(t *testing.T) {
		if err := v.Check([]byte("{"), alice.PublicBytes(), resource, now); err == nil {
			t.Fatal("garbage accepted")
		}
	})
}

func TestFeeSchedule(t *testing.T) {
	if FeeFor(PlanPremium) >= FeeFor(PlanBasic) {
		t.Fatal("premium should be cheaper per access than basic")
	}
}
