// Package market implements the decentralized data market service of the
// motivating scenario (Section II): account registration with contact and
// subscription details, market-fee payments, and signed payment
// certificates that consumers present to Pod Managers as proof of payment
// during resource access.
package market

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/cryptoutil"
	"repro/internal/simclock"
)

// Plan is a subscription tier.
type Plan string

// Subscription plans. Pricing is in abstract fee units; the economics are
// out of scope for the paper, so the plans only gate fee amounts.
const (
	PlanBasic   Plan = "basic"
	PlanPremium Plan = "premium"
)

// FeeFor returns the per-access fee for a plan.
func FeeFor(plan Plan) uint64 {
	switch plan {
	case PlanPremium:
		return 1
	default:
		return 5
	}
}

// CertificateTTL is the validity window of payment certificates.
const CertificateTTL = 24 * time.Hour

// Account is a registered market participant.
type Account struct {
	// WebID identifies the participant.
	WebID string
	// Address is the participant's key address; certificates are issued
	// to this key.
	Address cryptoutil.Address
	// Key is the participant's public key bytes.
	Key []byte
	// Contact is the account's contact details (scenario flavour).
	Contact string
	// Plan is the subscription tier ("" until subscribed).
	Plan Plan
	// FeesPaid accumulates paid fees, for the affordability experiment.
	FeesPaid uint64
	// Earned accumulates settlement payouts received as a data owner.
	Earned uint64
}

// Service is the market: an authority that registers accounts, takes fee
// payments, and issues payment certificates.
type Service struct {
	authority *cryptoutil.Authority
	clock     simclock.Clock

	mu             sync.Mutex
	accounts       map[string]*Account
	payments       uint64
	revenue        uint64
	resourceOwners map[string]string
	ownerAccesses  map[string]uint64
}

// Service errors.
var (
	ErrNoAccount      = errors.New("market: account not registered")
	ErrNotSubscribed  = errors.New("market: account has no subscription")
	ErrAlreadyExists  = errors.New("market: account already registered")
	ErrWrongRecipient = errors.New("market: certificate subject mismatch")
)

// NewService creates a market with a fresh signing authority.
func NewService(name string, clock simclock.Clock) (*Service, error) {
	if clock == nil {
		clock = simclock.Real{}
	}
	authority, err := cryptoutil.NewAuthority(name)
	if err != nil {
		return nil, err
	}
	return &Service{
		authority:      authority,
		clock:          clock,
		accounts:       make(map[string]*Account),
		resourceOwners: make(map[string]string),
		ownerAccesses:  make(map[string]uint64),
	}, nil
}

// Address returns the market's certificate-issuing address.
func (s *Service) Address() cryptoutil.Address { return s.authority.Address() }

// PublicBytes returns the market's public key, pinned by pod managers.
func (s *Service) PublicBytes() []byte { return s.authority.PublicBytes() }

// Register creates an account for a WebID bound to a key.
func (s *Service) Register(webID, contact string, addr cryptoutil.Address, key []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.accounts[webID]; ok {
		return fmt.Errorf("%w: %s", ErrAlreadyExists, webID)
	}
	s.accounts[webID] = &Account{
		WebID:   webID,
		Address: addr,
		Key:     append([]byte(nil), key...),
		Contact: contact,
	}
	return nil
}

// Subscribe sets the account's plan.
func (s *Service) Subscribe(webID string, plan Plan) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	acct, ok := s.accounts[webID]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoAccount, webID)
	}
	acct.Plan = plan
	return nil
}

// Account returns a copy of the account record.
func (s *Service) Account(webID string) (Account, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	acct, ok := s.accounts[webID]
	if !ok {
		return Account{}, fmt.Errorf("%w: %s", ErrNoAccount, webID)
	}
	return *acct, nil
}

// PayFee charges the consumer the market fee for a resource and issues a
// payment certificate binding (consumer key, resource) for CertificateTTL.
// This is the certificate Alice presents to Bob's Pod Manager in the
// motivating scenario.
func (s *Service) PayFee(consumerWebID, resourceIRI string) (*cryptoutil.Certificate, error) {
	s.mu.Lock()
	acct, ok := s.accounts[consumerWebID]
	if !ok {
		s.mu.Unlock()
		return nil, fmt.Errorf("%w: %s", ErrNoAccount, consumerWebID)
	}
	if acct.Plan == "" {
		s.mu.Unlock()
		return nil, fmt.Errorf("%w: %s", ErrNotSubscribed, consumerWebID)
	}
	fee := FeeFor(acct.Plan)
	acct.FeesPaid += fee
	s.payments++
	s.revenue += fee
	if owner, ok := s.resourceOwners[resourceIRI]; ok {
		s.ownerAccesses[owner]++
	}
	addr, key, plan := acct.Address, acct.Key, acct.Plan
	s.mu.Unlock()

	now := s.clock.Now()
	cert, err := s.authority.IssueForKey(addr, key, map[string]string{
		"feePaid":  resourceIRI,
		"plan":     string(plan),
		"consumer": consumerWebID,
	}, now, now.Add(CertificateTTL))
	if err != nil {
		return nil, err
	}
	return cert, nil
}

// Payments returns the total number of fee payments processed.
func (s *Service) Payments() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.payments
}

// Verifier checks payment certificates against a pinned market identity.
// Pod Managers hold one.
type Verifier struct {
	// MarketKey is the market's public key bytes.
	MarketKey []byte
	// MarketAddress is the market's address.
	MarketAddress cryptoutil.Address
}

// VerifierFor pins a verifier to a service (convenience for in-process
// wiring; a remote pod manager would pin the key out of band).
func VerifierFor(s *Service) Verifier {
	return Verifier{MarketKey: s.PublicBytes(), MarketAddress: s.Address()}
}

// Check validates a payment certificate for a resource access: issuer,
// signature, validity window, fee claim for the exact resource, and that
// the presenting key matches the certificate subject.
func (v Verifier) Check(certRaw []byte, presenterKey []byte, resourceIRI string, now time.Time) error {
	cert, err := cryptoutil.DecodeCertificate(certRaw)
	if err != nil {
		return err
	}
	if err := cert.Verify(v.MarketKey, v.MarketAddress, now); err != nil {
		return err
	}
	if cert.Claims["feePaid"] != resourceIRI {
		return fmt.Errorf("market: certificate pays for %q, not %q", cert.Claims["feePaid"], resourceIRI)
	}
	if string(cert.SubjectKey) != string(presenterKey) {
		return ErrWrongRecipient
	}
	return nil
}
