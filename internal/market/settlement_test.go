package market

import (
	"testing"

	"repro/internal/cryptoutil"
)

// settlementFixture registers two owners and one consumer, attributes
// resources, and pays fees: 3 accesses to Alice's resource, 1 to Bob's.
func settlementFixture(t *testing.T) (*Service, string, string) {
	t.Helper()
	svc, _ := newMarket(t)
	alice := "https://alice.pod/profile#me"
	bob := "https://bob.pod/profile#me"
	consumerKey := cryptoutil.MustGenerateKey()
	consumer := "https://carol.example/profile#me"

	for _, webID := range []string{alice, bob} {
		k := cryptoutil.MustGenerateKey()
		if err := svc.Register(webID, "c", k.Address(), k.PublicBytes()); err != nil {
			t.Fatal(err)
		}
	}
	if err := svc.Register(consumer, "c", consumerKey.Address(), consumerKey.PublicBytes()); err != nil {
		t.Fatal(err)
	}
	if err := svc.Subscribe(consumer, PlanBasic); err != nil {
		t.Fatal(err)
	}

	svc.SetResourceOwner("https://alice.pod/r1", alice)
	svc.SetResourceOwner("https://bob.pod/r1", bob)

	for range 3 {
		if _, err := svc.PayFee(consumer, "https://alice.pod/r1"); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := svc.PayFee(consumer, "https://bob.pod/r1"); err != nil {
		t.Fatal(err)
	}
	return svc, alice, bob
}

func TestSettlementProportionalDistribution(t *testing.T) {
	svc, alice, bob := settlementFixture(t)

	fee := FeeFor(PlanBasic)
	if got := svc.Revenue(); got != 4*fee {
		t.Fatalf("Revenue = %d, want %d", got, 4*fee)
	}
	if svc.AccessesFor(alice) != 3 || svc.AccessesFor(bob) != 1 {
		t.Fatalf("accesses = %d/%d", svc.AccessesFor(alice), svc.AccessesFor(bob))
	}

	payouts, err := svc.Settle(0) // no margin: distribute everything
	if err != nil {
		t.Fatal(err)
	}
	if len(payouts) != 2 {
		t.Fatalf("payouts = %+v", payouts)
	}
	byOwner := map[string]Payout{}
	for _, p := range payouts {
		byOwner[p.OwnerWebID] = p
	}
	total := 4 * fee
	if byOwner[alice].Amount != uint64(total)*3/4 {
		t.Fatalf("alice amount = %d, want %d", byOwner[alice].Amount, uint64(total)*3/4)
	}
	if byOwner[bob].Amount != uint64(total)*1/4 {
		t.Fatalf("bob amount = %d, want %d", byOwner[bob].Amount, uint64(total)/4)
	}

	// Earnings credited to accounts.
	aliceAcct, _ := svc.Account(alice)
	if aliceAcct.Earned != byOwner[alice].Amount {
		t.Fatalf("alice Earned = %d", aliceAcct.Earned)
	}
	// Period reset.
	if svc.AccessesFor(alice) != 0 {
		t.Fatal("accesses not reset after settlement")
	}
	if svc.Revenue() != 0 {
		t.Fatalf("undistributed revenue = %d after 0%% margin settle", svc.Revenue())
	}
}

func TestSettlementMargin(t *testing.T) {
	svc, alice, bob := settlementFixture(t)
	fee := FeeFor(PlanBasic)
	payouts, err := svc.Settle(25)
	if err != nil {
		t.Fatal(err)
	}
	var distributed uint64
	for _, p := range payouts {
		distributed += p.Amount
	}
	total := 4 * fee
	distributable := total * 75 / 100
	// Pro-rata integer division leaves at most len(payouts)-1 units of
	// rounding residue with the market.
	if distributed > distributable || distributable-distributed >= uint64(len(payouts)) {
		t.Fatalf("distributed = %d, want within %d of %d", distributed, len(payouts)-1, distributable)
	}
	// Market retains margin + rounding residue.
	if svc.Revenue() != total-distributed {
		t.Fatalf("retained = %d, want %d", svc.Revenue(), total-distributed)
	}
	_, _ = alice, bob
}

func TestSettlementEdgeCases(t *testing.T) {
	svc, _ := newMarket(t)

	t.Run("invalid margin", func(t *testing.T) {
		if _, err := svc.Settle(101); err == nil {
			t.Fatal("margin > 100% accepted")
		}
	})
	t.Run("nothing to settle", func(t *testing.T) {
		payouts, err := svc.Settle(10)
		if err != nil || payouts != nil {
			t.Fatalf("empty settle = %+v, %v", payouts, err)
		}
	})
	t.Run("unattributed resource pays nobody", func(t *testing.T) {
		k := cryptoutil.MustGenerateKey()
		consumer := "https://c.example/profile#me"
		if err := svc.Register(consumer, "c", k.Address(), k.PublicBytes()); err != nil {
			t.Fatal(err)
		}
		if err := svc.Subscribe(consumer, PlanBasic); err != nil {
			t.Fatal(err)
		}
		if _, err := svc.PayFee(consumer, "https://unattributed/r"); err != nil {
			t.Fatal(err)
		}
		payouts, err := svc.Settle(0)
		if err != nil {
			t.Fatal(err)
		}
		if payouts != nil {
			t.Fatalf("payouts for unattributed accesses: %+v", payouts)
		}
		// Revenue remains with the market until attributable.
		if svc.Revenue() == 0 {
			t.Fatal("revenue vanished")
		}
	})
	t.Run("resource owner lookup", func(t *testing.T) {
		svc.SetResourceOwner("https://x/r", "https://owner")
		if got := svc.ResourceOwner("https://x/r"); got != "https://owner" {
			t.Fatalf("ResourceOwner = %q", got)
		}
		if got := svc.ResourceOwner("https://y/r"); got != "" {
			t.Fatalf("unknown ResourceOwner = %q", got)
		}
	})
}
