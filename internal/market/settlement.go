package market

import (
	"fmt"
	"sort"
)

// Settlement implements the economic mechanism sketched in Section V-4 of
// the paper: "a subscription-based business model could offer an incentive
// mechanism that allows users to overcome the sharing costs and earn a
// remuneration upon access to their data ... a market profit
// redistribution to users, proportionately to the accesses granted to
// their data." The market attributes each paid access to the resource's
// owner and periodically settles accumulated revenue pro rata.

// Payout is one owner's share of a settlement.
type Payout struct {
	// OwnerWebID receives the payout.
	OwnerWebID string
	// Accesses is the number of paid accesses to the owner's resources in
	// the settled period.
	Accesses uint64
	// Amount is the fee units distributed to the owner.
	Amount uint64
}

// SetResourceOwner attributes a resource to an owner so its access fees
// count toward that owner's payouts. Pod managers call this at
// publication time.
func (s *Service) SetResourceOwner(resourceIRI, ownerWebID string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.resourceOwners[resourceIRI] = ownerWebID
}

// ResourceOwner returns the attributed owner of a resource ("" if none).
func (s *Service) ResourceOwner(resourceIRI string) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.resourceOwners[resourceIRI]
}

// Revenue returns the undistributed fee revenue.
func (s *Service) Revenue() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.revenue
}

// Totals reports the market's money flows in one consistent view:
// feesPaid is every fee ever charged to consumers, earned is every
// settlement payout credited to owner accounts, and revenue is the
// undistributed remainder held by the market. Conservation of funds
// demands feesPaid == earned + revenue at every instant (the market
// mints and burns nothing); the scenario engine checks exactly that.
func (s *Service) Totals() (feesPaid, earned, revenue uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, acct := range s.accounts {
		feesPaid += acct.FeesPaid
		earned += acct.Earned
	}
	return feesPaid, earned, s.revenue
}

// AccessesFor returns the paid accesses attributed to an owner in the
// current (unsettled) period.
func (s *Service) AccessesFor(ownerWebID string) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ownerAccesses[ownerWebID]
}

// Settle distributes the accumulated revenue to owners proportionally to
// the accesses their resources received, retaining marginPercent for the
// market, and resets the period. Earned amounts are credited to the
// owners' accounts. Rounding residue stays with the market.
func (s *Service) Settle(marginPercent uint64) ([]Payout, error) {
	if marginPercent > 100 {
		return nil, fmt.Errorf("market: margin %d%% > 100%%", marginPercent)
	}
	s.mu.Lock()
	defer s.mu.Unlock()

	var totalAccesses uint64
	for _, n := range s.ownerAccesses {
		totalAccesses += n
	}
	if totalAccesses == 0 {
		return nil, nil
	}
	distributable := s.revenue * (100 - marginPercent) / 100

	owners := make([]string, 0, len(s.ownerAccesses))
	for owner := range s.ownerAccesses {
		owners = append(owners, owner)
	}
	sort.Strings(owners)

	payouts := make([]Payout, 0, len(owners))
	var distributed uint64
	for _, owner := range owners {
		n := s.ownerAccesses[owner]
		amount := distributable * n / totalAccesses
		distributed += amount
		if acct, ok := s.accounts[owner]; ok {
			acct.Earned += amount
		}
		payouts = append(payouts, Payout{OwnerWebID: owner, Accesses: n, Amount: amount})
	}
	// The market keeps its margin plus rounding residue.
	s.revenue -= distributed
	s.ownerAccesses = make(map[string]uint64)
	return payouts, nil
}
