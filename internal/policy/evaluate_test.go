package policy

import (
	"testing"
	"testing/quick"
	"time"
)

func TestEvaluateScenarios(t *testing.T) {
	month := 30 * 24 * time.Hour
	week := 7 * 24 * time.Hour

	tests := []struct {
		name        string
		policy      func() *Policy
		ctx         UsageContext
		wantAllowed bool
		wantReasons []DenialReason
	}{
		{
			name:   "bob medical purpose ok",
			policy: bobPolicy,
			ctx: UsageContext{Now: t0.Add(time.Hour), Purpose: PurposeMedicalResearch,
				Action: ActionUse, RetrievedAt: t0},
			wantAllowed: true,
		},
		{
			name:   "bob wrong purpose denied",
			policy: bobPolicy,
			ctx: UsageContext{Now: t0.Add(time.Hour), Purpose: PurposeWebAnalytics,
				Action: ActionUse, RetrievedAt: t0},
			wantAllowed: false,
			wantReasons: []DenialReason{DenyPurpose},
		},
		{
			name:   "alice within retention ok",
			policy: alicePolicy,
			ctx: UsageContext{Now: t0.Add(month - time.Hour), Purpose: PurposeWebAnalytics,
				Action: ActionUse, RetrievedAt: t0},
			wantAllowed: true,
		},
		{
			name:   "alice after retention denied",
			policy: alicePolicy,
			ctx: UsageContext{Now: t0.Add(month + time.Hour), Purpose: PurposeWebAnalytics,
				Action: ActionUse, RetrievedAt: t0},
			wantAllowed: false,
			wantReasons: []DenialReason{DenyExpired},
		},
		{
			name: "alice shortened to one week denies at day 8",
			policy: func() *Policy {
				p := alicePolicy()
				p.MaxRetention = week
				p.Version = 2
				return p
			},
			ctx: UsageContext{Now: t0.Add(8 * 24 * time.Hour), Purpose: PurposeWebAnalytics,
				Action: ActionUse, RetrievedAt: t0},
			wantAllowed: false,
			wantReasons: []DenialReason{DenyExpired},
		},
		{
			name: "max uses exhausted",
			policy: func() *Policy {
				p := alicePolicy()
				p.MaxUses = 2
				return p
			},
			ctx: UsageContext{Now: t0.Add(time.Hour), Purpose: PurposeWebAnalytics,
				Action: ActionUse, RetrievedAt: t0, PriorUses: 2},
			wantAllowed: false,
			wantReasons: []DenialReason{DenyUsesSpent},
		},
		{
			name:   "share denied by default action set",
			policy: alicePolicy,
			ctx: UsageContext{Now: t0.Add(time.Hour), Purpose: PurposeWebAnalytics,
				Action: ActionShare, RetrievedAt: t0},
			wantAllowed: false,
			wantReasons: []DenialReason{DenyAction},
		},
		{
			name: "multiple reasons reported together",
			policy: func() *Policy {
				p := bobPolicy()
				p.MaxRetention = time.Hour
				p.MaxUses = 1
				return p
			},
			ctx: UsageContext{Now: t0.Add(2 * time.Hour), Purpose: PurposeMarketing,
				Action: ActionShare, RetrievedAt: t0, PriorUses: 5},
			wantAllowed: false,
			wantReasons: []DenialReason{DenyPurpose, DenyAction, DenyExpired, DenyUsesSpent},
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			d := tt.policy().Evaluate(tt.ctx)
			if d.Allowed != tt.wantAllowed {
				t.Fatalf("Allowed = %t, want %t (%s)", d.Allowed, tt.wantAllowed, d)
			}
			for _, want := range tt.wantReasons {
				if !d.Deny(want) {
					t.Errorf("missing denial reason %s in %v", want, d.Reasons)
				}
			}
			if len(d.Reasons) != len(tt.wantReasons) {
				t.Errorf("Reasons = %v, want %v", d.Reasons, tt.wantReasons)
			}
		})
	}
}

func TestEvaluateReportsDeadline(t *testing.T) {
	p := alicePolicy()
	d := p.Evaluate(UsageContext{Now: t0, Purpose: PurposeAny, Action: ActionUse, RetrievedAt: t0})
	if !d.HasDeadline {
		t.Fatal("expected a deadline")
	}
	want := t0.Add(p.MaxRetention)
	if !d.DeleteBy.Equal(want) {
		t.Fatalf("DeleteBy = %s, want %s", d.DeleteBy, want)
	}
}

func TestEvaluateMustNotify(t *testing.T) {
	p := alicePolicy()
	p.NotifyOnUse = true
	d := p.Evaluate(UsageContext{Now: t0, Purpose: PurposeAny, Action: ActionUse, RetrievedAt: t0})
	if !d.MustNotify {
		t.Fatal("MustNotify not propagated")
	}
}

func TestCompliantAt(t *testing.T) {
	p := alicePolicy() // 30-day retention
	if !p.CompliantAt(t0.Add(29*24*time.Hour), t0) {
		t.Error("should be compliant within retention")
	}
	if p.CompliantAt(t0.Add(31*24*time.Hour), t0) {
		t.Error("should be non-compliant after retention")
	}
	unconstrained := New("https://x/r", "o", t0)
	if !unconstrained.CompliantAt(t0.Add(1000*time.Hour), t0) {
		t.Error("unconstrained policy is always compliant")
	}
}

func TestDecisionString(t *testing.T) {
	p := alicePolicy()
	allow := p.Evaluate(UsageContext{Now: t0, Purpose: PurposeAny, Action: ActionUse, RetrievedAt: t0})
	if allow.String() == "" {
		t.Error("empty String for permit")
	}
	deny := bobPolicy().Evaluate(UsageContext{Now: t0, Purpose: PurposeMarketing, Action: ActionUse, RetrievedAt: t0})
	if deny.String() == "" {
		t.Error("empty String for deny")
	}
}

// TestEvaluateTimeMonotonicity: once a policy with a deadline denies with
// DenyExpired, any later instant also denies. Property-based over random
// offsets.
func TestEvaluateTimeMonotonicity(t *testing.T) {
	p := alicePolicy()
	f := func(offsetMinutes uint16, laterMinutes uint16) bool {
		now := t0.Add(time.Duration(offsetMinutes) * time.Minute)
		later := now.Add(time.Duration(laterMinutes) * time.Minute)
		ctx := UsageContext{Purpose: PurposeAny, Action: ActionUse, RetrievedAt: t0}
		ctx.Now = now
		first := p.Evaluate(ctx)
		ctx.Now = later
		second := p.Evaluate(ctx)
		if first.Deny(DenyExpired) && !second.Deny(DenyExpired) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestEvaluatePurposeNarrowingMonotonicity: removing purposes from the
// allowed set never turns a denial into a permit.
func TestEvaluatePurposeNarrowingMonotonicity(t *testing.T) {
	purposes := []Purpose{PurposeMedicalResearch, PurposeAcademic, PurposeWebAnalytics, PurposeMarketing}
	f := func(allowMask, keepMask uint8, purposeIdx uint8) bool {
		var allowed []Purpose
		for i, pu := range purposes {
			if allowMask&(1<<i) != 0 {
				allowed = append(allowed, pu)
			}
		}
		if len(allowed) == 0 {
			return true // unconstrained; narrowing undefined
		}
		var narrowed []Purpose
		for i, pu := range allowed {
			if keepMask&(1<<i) != 0 {
				narrowed = append(narrowed, pu)
			}
		}
		if len(narrowed) == 0 {
			narrowed = allowed[:1]
		}
		ctx := UsageContext{Now: t0, Purpose: purposes[int(purposeIdx)%len(purposes)],
			Action: ActionUse, RetrievedAt: t0}

		wide := alicePolicy()
		wide.MaxRetention = 0
		wide.AllowedPurposes = allowed
		narrow := wide.Clone()
		narrow.AllowedPurposes = narrowed

		wideDecision := wide.Evaluate(ctx)
		narrowDecision := narrow.Evaluate(ctx)
		// If the wide policy denies on purpose, the narrowed one must too.
		return !(wideDecision.Deny(DenyPurpose) && !narrowDecision.Deny(DenyPurpose))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
