package policy

import (
	"testing"
	"testing/quick"
	"time"

	"repro/internal/rdf"
)

func fullPolicy() *Policy {
	p := New("https://bob.pod/medical/ds1.ttl", "https://bob.pod/profile#me", t0)
	p.AllowedPurposes = []Purpose{PurposeMedicalResearch, PurposeAcademic}
	p.AllowedActions = []Action{ActionRead, ActionUse}
	p.MaxRetention = 7 * 24 * time.Hour
	p.ExpiresAt = t0.Add(90 * 24 * time.Hour)
	p.MaxUses = 100
	p.ProhibitSharing = true
	p.NotifyOnUse = true
	return p
}

func TestJSONRoundTrip(t *testing.T) {
	p := fullPolicy()
	data, err := p.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Hash() != p.Hash() {
		t.Fatalf("hash changed across JSON round trip:\n%+v\n%+v", p, back)
	}
	if back.MaxRetention != p.MaxRetention || back.MaxUses != p.MaxUses {
		t.Fatal("fields lost in round trip")
	}
}

func TestEncodeRejectsInvalid(t *testing.T) {
	p := fullPolicy()
	p.ID = ""
	if _, err := p.Encode(); err == nil {
		t.Fatal("Encode accepted an invalid policy")
	}
}

func TestDecodeRejectsGarbageAndInvalid(t *testing.T) {
	if _, err := Decode([]byte("{")); err == nil {
		t.Fatal("Decode accepted malformed JSON")
	}
	if _, err := Decode([]byte(`{"id":"x"}`)); err == nil {
		t.Fatal("Decode accepted structurally invalid policy")
	}
}

func TestHashOrderIndependence(t *testing.T) {
	a := fullPolicy()
	b := fullPolicy()
	b.AllowedPurposes = []Purpose{PurposeAcademic, PurposeMedicalResearch}
	b.AllowedActions = []Action{ActionUse, ActionRead}
	if a.Hash() != b.Hash() {
		t.Fatal("hash depends on slice ordering")
	}
}

func TestHashDiscriminates(t *testing.T) {
	base := fullPolicy()
	mutations := []func(*Policy){
		func(p *Policy) { p.Version++ },
		func(p *Policy) { p.MaxRetention += time.Second },
		func(p *Policy) { p.MaxUses++ },
		func(p *Policy) { p.AllowedPurposes = p.AllowedPurposes[:1] },
		func(p *Policy) { p.ProhibitSharing = false },
		func(p *Policy) { p.NotifyOnUse = false },
		func(p *Policy) { p.ExpiresAt = p.ExpiresAt.Add(time.Minute) },
		func(p *Policy) { p.OwnerWebID = "https://eve.pod/profile#me" },
	}
	for i, mutate := range mutations {
		m := base.Clone()
		mutate(m)
		if m.Hash() == base.Hash() {
			t.Errorf("mutation %d did not change the hash", i)
		}
	}
}

func TestHashDoesNotMutate(t *testing.T) {
	p := fullPolicy()
	// Deliberately unsorted.
	p.AllowedPurposes = []Purpose{PurposeMedicalResearch, PurposeAcademic}
	p.Hash()
	if p.AllowedPurposes[0] != PurposeMedicalResearch {
		t.Fatal("Hash sorted the receiver's slices in place")
	}
}

func TestRDFRoundTrip(t *testing.T) {
	p := fullPolicy()
	g := p.ToGraph()
	back, err := FromGraph(g, p.ID)
	if err != nil {
		t.Fatal(err)
	}
	if back.Hash() != p.Hash() {
		t.Fatalf("hash changed across RDF round trip\noriginal: %+v\nback: %+v", p, back)
	}
}

func TestRDFRoundTripViaTurtle(t *testing.T) {
	p := fullPolicy()
	doc := rdf.SerializeTurtle(p.ToGraph(), map[string]string{"uc": UC})
	g, err := rdf.ParseTurtle(doc)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, doc)
	}
	back, err := FromGraph(g, p.ID)
	if err != nil {
		t.Fatal(err)
	}
	if back.Hash() != p.Hash() {
		t.Fatalf("hash changed across Turtle round trip:\n%s", doc)
	}
}

func TestFromGraphErrors(t *testing.T) {
	g := rdf.NewGraph()
	if _, err := FromGraph(g, "https://x#policy"); err == nil {
		t.Fatal("FromGraph on empty graph should fail")
	}
	// Wrong-typed version literal.
	id := rdf.IRI("https://x#policy")
	g.Add(rdf.T(id, rdf.IRI(rdf.RDFType), rdf.IRI(UC+"UsagePolicy")))
	g.Add(rdf.T(id, rdf.IRI(UC+"resource"), rdf.IRI("https://x")))
	g.Add(rdf.T(id, rdf.IRI(UC+"owner"), rdf.IRI("https://o")))
	g.Add(rdf.T(id, rdf.IRI(UC+"version"), rdf.Literal("not-a-number")))
	if _, err := FromGraph(g, "https://x#policy"); err == nil {
		t.Fatal("FromGraph should reject a non-integer version")
	}
}

// TestCodecRoundTripProperty: random policies survive JSON and RDF round
// trips with identical hashes.
func TestCodecRoundTripProperty(t *testing.T) {
	purposes := []Purpose{PurposeMedicalResearch, PurposeAcademic, PurposeWebAnalytics}
	actions := []Action{ActionRead, ActionUse, ActionStore, ActionShare, ActionModify}
	f := func(purposeMask, actionMask uint8, retentionMin uint16, maxUses uint8, flags uint8) bool {
		p := New("https://e.pod/r1", "https://e.pod/profile#me", t0)
		for i, pu := range purposes {
			if purposeMask&(1<<i) != 0 {
				p.AllowedPurposes = append(p.AllowedPurposes, pu)
			}
		}
		for i, a := range actions {
			if actionMask&(1<<i) != 0 {
				p.AllowedActions = append(p.AllowedActions, a)
			}
		}
		p.MaxRetention = time.Duration(retentionMin) * time.Minute
		p.MaxUses = uint64(maxUses)
		p.ProhibitSharing = flags&1 != 0
		p.NotifyOnUse = flags&2 != 0
		if flags&4 != 0 {
			p.ExpiresAt = t0.Add(time.Duration(retentionMin) * time.Hour)
		}

		data, err := p.Encode()
		if err != nil {
			return false
		}
		viaJSON, err := Decode(data)
		if err != nil || viaJSON.Hash() != p.Hash() {
			return false
		}
		viaRDF, err := FromGraph(p.ToGraph(), p.ID)
		if err != nil || viaRDF.Hash() != p.Hash() {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}
