package policy

import (
	"testing"
	"time"
)

func TestComputeDiff(t *testing.T) {
	week := 7 * 24 * time.Hour

	t.Run("retention shortened", func(t *testing.T) {
		oldP := alicePolicy()
		newP := oldP.NextVersion(t0.Add(48 * time.Hour))
		newP.MaxRetention = week
		d, err := Compute(oldP, newP)
		if err != nil {
			t.Fatal(err)
		}
		if !d.RetentionChanged {
			t.Error("RetentionChanged not detected")
		}
		if d.PurposesChanged {
			t.Error("spurious purpose change")
		}
	})

	t.Run("purpose narrowed", func(t *testing.T) {
		oldP := bobPolicy()
		newP := oldP.NextVersion(t0.Add(48 * time.Hour))
		newP.AllowedPurposes = []Purpose{PurposeAcademic}
		d, err := Compute(oldP, newP)
		if err != nil {
			t.Fatal(err)
		}
		if !d.PurposesChanged {
			t.Fatal("PurposesChanged not detected")
		}
		if len(d.PurposesNarrowed) != 1 || d.PurposesNarrowed[0] != PurposeMedicalResearch {
			t.Fatalf("PurposesNarrowed = %v", d.PurposesNarrowed)
		}
	})

	t.Run("no change", func(t *testing.T) {
		oldP := bobPolicy()
		newP := oldP.NextVersion(t0.Add(time.Hour))
		d, err := Compute(oldP, newP)
		if err != nil {
			t.Fatal(err)
		}
		if d.RetentionChanged || d.PurposesChanged || d.UsesChanged || d.SharingTightened || d.NotifyChanged {
			t.Fatalf("spurious diff: %+v", d)
		}
	})

	t.Run("sharing tightened and notify toggled", func(t *testing.T) {
		oldP := alicePolicy()
		newP := oldP.NextVersion(t0.Add(time.Hour))
		newP.ProhibitSharing = true
		newP.NotifyOnUse = true
		newP.MaxUses = 5
		d, err := Compute(oldP, newP)
		if err != nil {
			t.Fatal(err)
		}
		if !d.SharingTightened || !d.NotifyChanged || !d.UsesChanged {
			t.Fatalf("diff = %+v", d)
		}
	})

	t.Run("cross-resource diff rejected", func(t *testing.T) {
		if _, err := Compute(alicePolicy(), bobPolicy()); err == nil {
			t.Fatal("Compute across resources should fail")
		}
	})

	t.Run("unconstrained to constrained", func(t *testing.T) {
		oldP := alicePolicy() // no purpose constraint
		newP := oldP.NextVersion(t0.Add(time.Hour))
		newP.AllowedPurposes = []Purpose{PurposeAcademic}
		d, err := Compute(oldP, newP)
		if err != nil {
			t.Fatal(err)
		}
		if !d.PurposesChanged {
			t.Fatal("constraining an unconstrained policy must register")
		}
		// The wildcard pseudo-purpose is narrowed away.
		if len(d.PurposesNarrowed) != 1 || d.PurposesNarrowed[0] != PurposeAny {
			t.Fatalf("PurposesNarrowed = %v", d.PurposesNarrowed)
		}
	})
}

// TestObligationsForAliceScenario reproduces the paper's policy
// modification: after two days Alice shortens max storage from one month
// to one week. A holder that retrieved five days ago reschedules; a holder
// that retrieved nine days ago must delete now.
func TestObligationsForAliceScenario(t *testing.T) {
	week := 7 * 24 * time.Hour
	newP := alicePolicy().NextVersion(t0)
	newP.MaxRetention = week

	t.Run("young copy reschedules", func(t *testing.T) {
		retrieved := t0.Add(-5 * 24 * time.Hour)
		obs := ObligationsFor(newP, HolderState{RetrievedAt: retrieved, Purpose: PurposeWebAnalytics, Now: t0})
		if len(obs) != 1 || obs[0].Kind != ObligationReschedule {
			t.Fatalf("obligations = %+v, want single reschedule", obs)
		}
		if !obs[0].DeleteBy.Equal(retrieved.Add(week)) {
			t.Fatalf("DeleteBy = %s, want %s", obs[0].DeleteBy, retrieved.Add(week))
		}
	})

	t.Run("old copy deletes now", func(t *testing.T) {
		retrieved := t0.Add(-9 * 24 * time.Hour)
		obs := ObligationsFor(newP, HolderState{RetrievedAt: retrieved, Purpose: PurposeWebAnalytics, Now: t0})
		if len(obs) != 1 || obs[0].Kind != ObligationDeleteNow {
			t.Fatalf("obligations = %+v, want single delete-now", obs)
		}
	})
}

// TestObligationsForBobScenario reproduces Bob's purpose change to
// academic: Alice (medical-research app at a university hospital that also
// declares academic) keeps access if her purpose remains allowed; a
// consumer with a non-academic purpose has its use revoked.
func TestObligationsForBobScenario(t *testing.T) {
	newP := bobPolicy().NextVersion(t0)
	newP.AllowedPurposes = []Purpose{PurposeAcademic}

	t.Run("still-allowed purpose unaffected", func(t *testing.T) {
		obs := ObligationsFor(newP, HolderState{RetrievedAt: t0.Add(-time.Hour), Purpose: PurposeAcademic, Now: t0})
		if len(obs) != 1 || obs[0].Kind != ObligationNone {
			t.Fatalf("obligations = %+v, want none", obs)
		}
	})

	t.Run("disallowed purpose revoked", func(t *testing.T) {
		obs := ObligationsFor(newP, HolderState{RetrievedAt: t0.Add(-time.Hour), Purpose: PurposeMedicalResearch, Now: t0})
		if len(obs) != 1 || obs[0].Kind != ObligationRevokeUse {
			t.Fatalf("obligations = %+v, want revoke-use", obs)
		}
	})
}

func TestObligationsCombined(t *testing.T) {
	newP := bobPolicy().NextVersion(t0)
	newP.AllowedPurposes = []Purpose{PurposeAcademic}
	newP.MaxRetention = time.Hour

	obs := ObligationsFor(newP, HolderState{
		RetrievedAt: t0.Add(-2 * time.Hour), Purpose: PurposeMedicalResearch, Now: t0,
	})
	kinds := map[ObligationKind]bool{}
	for _, o := range obs {
		kinds[o.Kind] = true
	}
	if !kinds[ObligationDeleteNow] || !kinds[ObligationRevokeUse] {
		t.Fatalf("obligations = %+v, want delete-now + revoke-use", obs)
	}
}
