package policy

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"repro/internal/cryptoutil"
	"repro/internal/rdf"
)

// Encode serializes the policy as JSON. This is the wire form stored
// on-chain by the DE App and exchanged through oracles.
func (p *Policy) Encode() ([]byte, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return json.Marshal(p)
}

// Decode parses a JSON-encoded policy and validates it.
func Decode(data []byte) (*Policy, error) {
	var p Policy
	if err := json.Unmarshal(data, &p); err != nil {
		return nil, fmt.Errorf("policy: decode: %w", err)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &p, nil
}

// Hash returns a canonical content hash of the policy, used for on-chain
// integrity anchoring. Two structurally equal policies hash identically
// regardless of slice ordering of purposes/actions.
func (p *Policy) Hash() cryptoutil.Hash {
	c := p.Clone()
	sortPurposes(c.AllowedPurposes)
	sortActions(c.AllowedActions)
	var b strings.Builder
	fmt.Fprintf(&b, "%s|%s|%s|%d|%d|", c.ID, c.ResourceIRI, c.OwnerWebID, c.Version, c.IssuedAt.UnixNano())
	for _, pu := range c.AllowedPurposes {
		fmt.Fprintf(&b, "p:%s;", pu)
	}
	for _, a := range c.AllowedActions {
		fmt.Fprintf(&b, "a:%s;", a)
	}
	fmt.Fprintf(&b, "|%d|%d|%d|%t|%t",
		c.MaxRetention, c.ExpiresAt.UnixNano(), c.MaxUses, c.ProhibitSharing, c.NotifyOnUse)
	return cryptoutil.HashOf([]byte(b.String()))
}

func sortPurposes(ps []Purpose) {
	for i := 1; i < len(ps); i++ {
		for j := i; j > 0 && ps[j] < ps[j-1]; j-- {
			ps[j], ps[j-1] = ps[j-1], ps[j]
		}
	}
}

func sortActions(as []Action) {
	for i := 1; i < len(as); i++ {
		for j := i; j > 0 && as[j] < as[j-1]; j-- {
			as[j], as[j-1] = as[j-1], as[j]
		}
	}
}

// UC is the RDF vocabulary namespace for usage-control policy documents.
const UC = "https://w3id.org/usagecontrol#"

// Vocabulary IRIs for the RDF form of policies.
var (
	ucPolicy          = rdf.IRI(UC + "UsagePolicy")
	ucResource        = rdf.IRI(UC + "resource")
	ucOwner           = rdf.IRI(UC + "owner")
	ucVersion         = rdf.IRI(UC + "version")
	ucIssuedAt        = rdf.IRI(UC + "issuedAt")
	ucAllowedPurpose  = rdf.IRI(UC + "allowedPurpose")
	ucAllowedAction   = rdf.IRI(UC + "allowedAction")
	ucMaxRetention    = rdf.IRI(UC + "maxRetentionNanos")
	ucExpiresAt       = rdf.IRI(UC + "expiresAt")
	ucMaxUses         = rdf.IRI(UC + "maxUses")
	ucProhibitSharing = rdf.IRI(UC + "prohibitSharing")
	ucNotifyOnUse     = rdf.IRI(UC + "notifyOnUse")
)

// ToGraph renders the policy as an RDF graph, the form in which policies
// are stored inside Solid pods alongside the resources they govern.
func (p *Policy) ToGraph() *rdf.Graph {
	g := rdf.NewGraph()
	id := rdf.IRI(p.ID)
	g.Add(rdf.T(id, rdf.IRI(rdf.RDFType), ucPolicy))
	g.Add(rdf.T(id, ucResource, rdf.IRI(p.ResourceIRI)))
	g.Add(rdf.T(id, ucOwner, rdf.IRI(p.OwnerWebID)))
	g.Add(rdf.T(id, ucVersion, rdf.Integer(int64(p.Version))))
	g.Add(rdf.T(id, ucIssuedAt, rdf.TypedLiteral(p.IssuedAt.UTC().Format(time.RFC3339Nano), rdf.XSDDateTime)))
	for _, pu := range p.AllowedPurposes {
		g.Add(rdf.T(id, ucAllowedPurpose, rdf.Literal(string(pu))))
	}
	for _, a := range p.AllowedActions {
		g.Add(rdf.T(id, ucAllowedAction, rdf.Literal(string(a))))
	}
	if p.MaxRetention > 0 {
		g.Add(rdf.T(id, ucMaxRetention, rdf.Integer(int64(p.MaxRetention))))
	}
	if !p.ExpiresAt.IsZero() {
		g.Add(rdf.T(id, ucExpiresAt, rdf.TypedLiteral(p.ExpiresAt.UTC().Format(time.RFC3339Nano), rdf.XSDDateTime)))
	}
	if p.MaxUses > 0 {
		g.Add(rdf.T(id, ucMaxUses, rdf.Integer(int64(p.MaxUses))))
	}
	if p.ProhibitSharing {
		g.Add(rdf.T(id, ucProhibitSharing, rdf.Boolean(true)))
	}
	if p.NotifyOnUse {
		g.Add(rdf.T(id, ucNotifyOnUse, rdf.Boolean(true)))
	}
	return g
}

// FromGraph extracts the policy with the given ID from an RDF graph
// produced by ToGraph (or hand-written Turtle using the UC vocabulary).
func FromGraph(g *rdf.Graph, id string) (*Policy, error) {
	subject := rdf.IRI(id)
	if !g.Has(rdf.T(subject, rdf.IRI(rdf.RDFType), ucPolicy)) {
		return nil, fmt.Errorf("policy: %s is not a uc:UsagePolicy in graph", id)
	}
	p := &Policy{ID: id}
	if o := g.FirstObject(subject, ucResource); !o.IsZero() {
		p.ResourceIRI = o.Value()
	}
	if o := g.FirstObject(subject, ucOwner); !o.IsZero() {
		p.OwnerWebID = o.Value()
	}
	if o := g.FirstObject(subject, ucVersion); !o.IsZero() {
		v, err := o.Int()
		if err != nil {
			return nil, fmt.Errorf("policy: bad version literal: %w", err)
		}
		p.Version = uint64(v)
	}
	if o := g.FirstObject(subject, ucIssuedAt); !o.IsZero() {
		ts, err := time.Parse(time.RFC3339Nano, o.Value())
		if err != nil {
			return nil, fmt.Errorf("policy: bad issuedAt literal: %w", err)
		}
		p.IssuedAt = ts
	}
	for _, o := range g.Objects(subject, ucAllowedPurpose) {
		p.AllowedPurposes = append(p.AllowedPurposes, Purpose(o.Value()))
	}
	for _, o := range g.Objects(subject, ucAllowedAction) {
		p.AllowedActions = append(p.AllowedActions, Action(o.Value()))
	}
	if o := g.FirstObject(subject, ucMaxRetention); !o.IsZero() {
		v, err := o.Int()
		if err != nil {
			return nil, fmt.Errorf("policy: bad retention literal: %w", err)
		}
		p.MaxRetention = time.Duration(v)
	}
	if o := g.FirstObject(subject, ucExpiresAt); !o.IsZero() {
		ts, err := time.Parse(time.RFC3339Nano, o.Value())
		if err != nil {
			return nil, fmt.Errorf("policy: bad expiresAt literal: %w", err)
		}
		p.ExpiresAt = ts
	}
	if o := g.FirstObject(subject, ucMaxUses); !o.IsZero() {
		v, err := o.Int()
		if err != nil {
			return nil, fmt.Errorf("policy: bad maxUses literal: %w", err)
		}
		p.MaxUses = uint64(v)
	}
	if o := g.FirstObject(subject, ucProhibitSharing); !o.IsZero() {
		v, err := o.Bool()
		if err != nil {
			return nil, fmt.Errorf("policy: bad prohibitSharing literal: %w", err)
		}
		p.ProhibitSharing = v
	}
	if o := g.FirstObject(subject, ucNotifyOnUse); !o.IsZero() {
		v, err := o.Bool()
		if err != nil {
			return nil, fmt.Errorf("policy: bad notifyOnUse literal: %w", err)
		}
		p.NotifyOnUse = v
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}
