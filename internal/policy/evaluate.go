package policy

import (
	"fmt"
	"time"
)

// UsageContext describes one attempted use of a resource copy, as seen by
// the enforcement point (the TEE's trusted application).
type UsageContext struct {
	// Now is the evaluation instant.
	Now time.Time
	// Purpose is the declared purpose of the running application.
	Purpose Purpose
	// Action is the operation being attempted.
	Action Action
	// RetrievedAt is when the local copy was obtained from the pod.
	RetrievedAt time.Time
	// PriorUses is the number of uses already performed on this copy.
	PriorUses uint64
}

// DenialReason is a machine-readable reason code for a denied use.
type DenialReason string

// Denial reason codes.
const (
	DenyPurpose   DenialReason = "purpose-not-allowed"
	DenyAction    DenialReason = "action-not-allowed"
	DenyExpired   DenialReason = "retention-expired"
	DenyUsesSpent DenialReason = "max-uses-exhausted"
)

// Decision is the outcome of evaluating a policy against a usage context.
type Decision struct {
	// Allowed reports whether the use may proceed.
	Allowed bool
	// Reasons lists why the use was denied (empty when allowed).
	Reasons []DenialReason
	// DeleteBy is the deletion deadline for the copy, if any. It is
	// reported on allowed and denied decisions alike so the enforcement
	// point can (re)schedule the deletion obligation.
	DeleteBy time.Time
	// HasDeadline reports whether DeleteBy is meaningful.
	HasDeadline bool
	// MustNotify reports whether this use must be logged for the
	// notify-on-use duty.
	MustNotify bool
}

// Deny reports whether the decision denies for the given reason.
func (d Decision) Deny(reason DenialReason) bool {
	for _, r := range d.Reasons {
		if r == reason {
			return true
		}
	}
	return false
}

// String renders the decision for logs.
func (d Decision) String() string {
	if d.Allowed {
		if d.HasDeadline {
			return fmt.Sprintf("permit (delete by %s)", d.DeleteBy.UTC().Format(time.RFC3339))
		}
		return "permit"
	}
	return fmt.Sprintf("deny %v", d.Reasons)
}

// Evaluate decides whether the use described by ctx complies with the
// policy. Evaluation is pure: it inspects only its arguments.
//
// The decision combines four checks — purpose constraint, action
// permission, temporal obligation (retention/expiry), and usage-count
// limit. All failing checks are reported, not just the first, so that
// compliance evidence can name every violated constraint.
func (p *Policy) Evaluate(ctx UsageContext) Decision {
	d := Decision{MustNotify: p.NotifyOnUse}
	d.DeleteBy, d.HasDeadline = p.DeleteDeadline(ctx.RetrievedAt)

	if !p.PermitsPurpose(ctx.Purpose) {
		d.Reasons = append(d.Reasons, DenyPurpose)
	}
	if !p.PermitsAction(ctx.Action) {
		d.Reasons = append(d.Reasons, DenyAction)
	}
	if d.HasDeadline && ctx.Now.After(d.DeleteBy) {
		d.Reasons = append(d.Reasons, DenyExpired)
	}
	if p.MaxUses > 0 && ctx.PriorUses >= p.MaxUses {
		d.Reasons = append(d.Reasons, DenyUsesSpent)
	}
	d.Allowed = len(d.Reasons) == 0
	return d
}

// CompliantAt reports whether merely holding a copy retrieved at
// retrievedAt is compliant at instant now (i.e. the deletion obligation,
// if any, has not yet lapsed). This is the check performed during the
// Fig. 2(6) policy-monitoring process for devices that still store a copy.
func (p *Policy) CompliantAt(now, retrievedAt time.Time) bool {
	deadline, has := p.DeleteDeadline(retrievedAt)
	return !has || !now.After(deadline)
}
