// Package policy implements the usage-policy model of the usage-control
// architecture: an ODRL-inspired language with purpose constraints,
// temporal (retention/expiry) obligations, usage-count limits, sharing
// prohibitions and notification duties, together with an evaluation engine
// and a policy-update differ.
//
// The paper's two running examples are expressible directly:
//
//   - Bob's medical dataset "to be used only for medical purposes" is a
//     policy with AllowedPurposes = {medical-research} (later modified to
//     {academic}).
//   - Alice's internet-browsing dataset "must be deleted one month after
//     storage" is a policy with MaxRetention = 30 days (later shortened to
//     7 days).
//
// # Concurrency contract
//
// The package holds no locks and spawns no goroutines. Policy values are
// plain data: Evaluate, Diff, and the codec are pure functions of their
// inputs, so concurrent evaluation of the same *Policy is safe as long
// as no caller mutates it concurrently. Components that share a policy
// across goroutines (the TEE trusted application, the DE App contract)
// are responsible for copying or externally synchronizing mutation —
// which is how the chain layer uses it: policies that cross the
// on-chain/off-chain boundary are serialized through the codec, never
// shared by pointer.
package policy
