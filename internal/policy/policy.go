package policy

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"
)

// Purpose classifies the declared aim of a data use, e.g. "medical-research".
type Purpose string

// Common purposes used throughout the examples and experiments. The
// vocabulary is open: any non-empty string is a valid purpose.
const (
	PurposeMedicalResearch Purpose = "medical-research"
	PurposeAcademic        Purpose = "academic"
	PurposeWebAnalytics    Purpose = "web-analytics"
	PurposeMarketing       Purpose = "marketing"
	PurposeAny             Purpose = "*"
)

// Action is the operation a consumer performs on a resource copy.
type Action string

// The action vocabulary. ActionStore is implied by retrieval; ActionShare
// covers redistribution to third parties.
const (
	ActionRead   Action = "read"
	ActionUse    Action = "use"
	ActionStore  Action = "store"
	ActionShare  Action = "share"
	ActionModify Action = "modify"
)

// Policy is a usage policy attached to a resource. The zero value is not a
// valid policy; use New and the setters, or fill the fields and call
// Validate.
type Policy struct {
	// ID uniquely identifies the policy (typically "<resource-iri>#policy").
	ID string `json:"id"`
	// ResourceIRI is the resource the policy governs.
	ResourceIRI string `json:"resource"`
	// OwnerWebID identifies the data owner.
	OwnerWebID string `json:"owner"`
	// Version increases by one on every modification. Version numbers are
	// the propagation mechanism of the Fig. 2(5) policy-modification
	// process: TEEs compare versions to detect stale local copies.
	Version uint64 `json:"version"`
	// IssuedAt is the time this version was issued.
	IssuedAt time.Time `json:"issuedAt"`

	// AllowedPurposes restricts usage to the listed purposes. Empty or
	// containing PurposeAny means any purpose is acceptable.
	AllowedPurposes []Purpose `json:"allowedPurposes,omitempty"`
	// AllowedActions restricts the permitted actions. Empty means the
	// default set {read, use, store}.
	AllowedActions []Action `json:"allowedActions,omitempty"`
	// MaxRetention is the maximum duration a copy may be kept after
	// retrieval; 0 means unlimited.
	MaxRetention time.Duration `json:"maxRetentionNanos,omitempty"`
	// ExpiresAt is an absolute deletion deadline; the zero time means none.
	ExpiresAt time.Time `json:"expiresAt,omitempty"`
	// MaxUses caps the number of uses of a copy; 0 means unlimited.
	MaxUses uint64 `json:"maxUses,omitempty"`
	// ProhibitSharing forbids redistribution of the copy.
	ProhibitSharing bool `json:"prohibitSharing,omitempty"`
	// NotifyOnUse obliges the consumer device to log and report every use
	// during policy monitoring.
	NotifyOnUse bool `json:"notifyOnUse,omitempty"`
}

// New returns a version-1 policy for a resource with the default action
// set and no constraints.
func New(resourceIRI, ownerWebID string, issuedAt time.Time) *Policy {
	return &Policy{
		ID:          resourceIRI + "#policy",
		ResourceIRI: resourceIRI,
		OwnerWebID:  ownerWebID,
		Version:     1,
		IssuedAt:    issuedAt,
	}
}

// Validation errors.
var (
	ErrNoID          = errors.New("policy: missing id")
	ErrNoResource    = errors.New("policy: missing resource IRI")
	ErrNoOwner       = errors.New("policy: missing owner")
	ErrZeroVersion   = errors.New("policy: version must be >= 1")
	ErrBadRetention  = errors.New("policy: negative retention")
	ErrEmptyPurpose  = errors.New("policy: empty purpose string")
	ErrUnknownAction = errors.New("policy: unknown action")
)

// knownActions is the closed action vocabulary.
var knownActions = map[Action]struct{}{
	ActionRead: {}, ActionUse: {}, ActionStore: {}, ActionShare: {}, ActionModify: {},
}

// Validate checks structural well-formedness.
func (p *Policy) Validate() error {
	switch {
	case p.ID == "":
		return ErrNoID
	case p.ResourceIRI == "":
		return ErrNoResource
	case p.OwnerWebID == "":
		return ErrNoOwner
	case p.Version == 0:
		return ErrZeroVersion
	case p.MaxRetention < 0:
		return ErrBadRetention
	}
	for _, pu := range p.AllowedPurposes {
		if pu == "" {
			return ErrEmptyPurpose
		}
	}
	for _, a := range p.AllowedActions {
		if _, ok := knownActions[a]; !ok {
			return fmt.Errorf("%w: %q", ErrUnknownAction, a)
		}
	}
	return nil
}

// Clone returns a deep copy.
func (p *Policy) Clone() *Policy {
	c := *p
	c.AllowedPurposes = append([]Purpose(nil), p.AllowedPurposes...)
	c.AllowedActions = append([]Action(nil), p.AllowedActions...)
	return &c
}

// NextVersion returns a clone with Version+1 and the new issue time,
// ready to be mutated by the caller before publication.
func (p *Policy) NextVersion(issuedAt time.Time) *Policy {
	c := p.Clone()
	c.Version++
	c.IssuedAt = issuedAt
	return c
}

// PermitsPurpose reports whether the purpose satisfies the purpose
// constraint.
func (p *Policy) PermitsPurpose(purpose Purpose) bool {
	if len(p.AllowedPurposes) == 0 {
		return true
	}
	for _, allowed := range p.AllowedPurposes {
		if allowed == PurposeAny || allowed == purpose {
			return true
		}
	}
	return false
}

// PermitsAction reports whether the action is in the permitted set.
func (p *Policy) PermitsAction(action Action) bool {
	if action == ActionShare && p.ProhibitSharing {
		return false
	}
	if len(p.AllowedActions) == 0 {
		return action == ActionRead || action == ActionUse || action == ActionStore
	}
	for _, allowed := range p.AllowedActions {
		if allowed == action {
			return true
		}
	}
	return false
}

// DeleteDeadline returns the instant by which a copy retrieved at
// retrievedAt must be deleted, and whether such a deadline exists. When
// both a retention bound and an absolute expiry apply, the earlier wins.
func (p *Policy) DeleteDeadline(retrievedAt time.Time) (time.Time, bool) {
	var deadline time.Time
	has := false
	if p.MaxRetention > 0 {
		deadline = retrievedAt.Add(p.MaxRetention)
		has = true
	}
	if !p.ExpiresAt.IsZero() && (!has || p.ExpiresAt.Before(deadline)) {
		deadline = p.ExpiresAt
		has = true
	}
	return deadline, has
}

// Summary renders a short human-readable description, used by example
// binaries and logs.
func (p *Policy) Summary() string {
	var parts []string
	if len(p.AllowedPurposes) > 0 {
		ps := make([]string, len(p.AllowedPurposes))
		for i, pu := range p.AllowedPurposes {
			ps[i] = string(pu)
		}
		sort.Strings(ps)
		parts = append(parts, "purposes="+strings.Join(ps, ","))
	}
	if p.MaxRetention > 0 {
		parts = append(parts, "retention="+p.MaxRetention.String())
	}
	if !p.ExpiresAt.IsZero() {
		parts = append(parts, "expires="+p.ExpiresAt.UTC().Format(time.RFC3339))
	}
	if p.MaxUses > 0 {
		parts = append(parts, fmt.Sprintf("maxUses=%d", p.MaxUses))
	}
	if p.ProhibitSharing {
		parts = append(parts, "no-sharing")
	}
	if p.NotifyOnUse {
		parts = append(parts, "notify-on-use")
	}
	if len(parts) == 0 {
		parts = append(parts, "unconstrained")
	}
	return fmt.Sprintf("policy %s v%d [%s]", p.ID, p.Version, strings.Join(parts, " "))
}
