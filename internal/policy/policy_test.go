package policy

import (
	"errors"
	"strings"
	"testing"
	"time"
)

var t0 = time.Date(2023, 10, 9, 12, 0, 0, 0, time.UTC)

// alicePolicy models the paper's internet-browsing dataset policy:
// delete one month after storage.
func alicePolicy() *Policy {
	p := New("https://alice.pod/web/browsing.csv", "https://alice.pod/profile#me", t0)
	p.MaxRetention = 30 * 24 * time.Hour
	return p
}

// bobPolicy models the paper's medical dataset policy: medical purposes only.
func bobPolicy() *Policy {
	p := New("https://bob.pod/medical/ds1.ttl", "https://bob.pod/profile#me", t0)
	p.AllowedPurposes = []Purpose{PurposeMedicalResearch}
	return p
}

func TestNewDefaults(t *testing.T) {
	p := New("https://x/r", "https://x/profile#me", t0)
	if p.Version != 1 {
		t.Errorf("Version = %d, want 1", p.Version)
	}
	if p.ID != "https://x/r#policy" {
		t.Errorf("ID = %q", p.ID)
	}
	if err := p.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestValidate(t *testing.T) {
	tests := []struct {
		name    string
		mutate  func(*Policy)
		wantErr error
	}{
		{"valid", func(p *Policy) {}, nil},
		{"no id", func(p *Policy) { p.ID = "" }, ErrNoID},
		{"no resource", func(p *Policy) { p.ResourceIRI = "" }, ErrNoResource},
		{"no owner", func(p *Policy) { p.OwnerWebID = "" }, ErrNoOwner},
		{"zero version", func(p *Policy) { p.Version = 0 }, ErrZeroVersion},
		{"negative retention", func(p *Policy) { p.MaxRetention = -time.Hour }, ErrBadRetention},
		{"empty purpose", func(p *Policy) { p.AllowedPurposes = []Purpose{""} }, ErrEmptyPurpose},
		{"unknown action", func(p *Policy) { p.AllowedActions = []Action{"fly"} }, ErrUnknownAction},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p := alicePolicy()
			tt.mutate(p)
			err := p.Validate()
			if tt.wantErr == nil && err != nil {
				t.Fatalf("Validate: %v, want nil", err)
			}
			if tt.wantErr != nil && !errors.Is(err, tt.wantErr) {
				t.Fatalf("Validate: %v, want %v", err, tt.wantErr)
			}
		})
	}
}

func TestPermitsPurpose(t *testing.T) {
	tests := []struct {
		name    string
		allowed []Purpose
		purpose Purpose
		want    bool
	}{
		{"unconstrained", nil, PurposeMarketing, true},
		{"match", []Purpose{PurposeMedicalResearch}, PurposeMedicalResearch, true},
		{"mismatch", []Purpose{PurposeMedicalResearch}, PurposeMarketing, false},
		{"wildcard entry", []Purpose{PurposeAny}, PurposeMarketing, true},
		{"multi", []Purpose{PurposeAcademic, PurposeMedicalResearch}, PurposeAcademic, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p := alicePolicy()
			p.AllowedPurposes = tt.allowed
			if got := p.PermitsPurpose(tt.purpose); got != tt.want {
				t.Errorf("PermitsPurpose(%q) = %t, want %t", tt.purpose, got, tt.want)
			}
		})
	}
}

func TestPermitsAction(t *testing.T) {
	p := alicePolicy()
	// Default set.
	for _, a := range []Action{ActionRead, ActionUse, ActionStore} {
		if !p.PermitsAction(a) {
			t.Errorf("default should permit %s", a)
		}
	}
	for _, a := range []Action{ActionShare, ActionModify} {
		if p.PermitsAction(a) {
			t.Errorf("default should not permit %s", a)
		}
	}
	// Explicit set.
	p.AllowedActions = []Action{ActionRead, ActionShare}
	if !p.PermitsAction(ActionShare) || p.PermitsAction(ActionUse) {
		t.Error("explicit action set not honoured")
	}
	// Sharing prohibition dominates.
	p.ProhibitSharing = true
	if p.PermitsAction(ActionShare) {
		t.Error("ProhibitSharing must override AllowedActions")
	}
}

func TestDeleteDeadline(t *testing.T) {
	retrieved := t0
	tests := []struct {
		name      string
		retention time.Duration
		expires   time.Time
		want      time.Time
		wantHas   bool
	}{
		{"none", 0, time.Time{}, time.Time{}, false},
		{"retention only", time.Hour, time.Time{}, retrieved.Add(time.Hour), true},
		{"expiry only", 0, t0.Add(2 * time.Hour), t0.Add(2 * time.Hour), true},
		{"expiry earlier", 5 * time.Hour, t0.Add(time.Hour), t0.Add(time.Hour), true},
		{"retention earlier", time.Hour, t0.Add(5 * time.Hour), retrieved.Add(time.Hour), true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p := alicePolicy()
			p.MaxRetention = tt.retention
			p.ExpiresAt = tt.expires
			got, has := p.DeleteDeadline(retrieved)
			if has != tt.wantHas || (has && !got.Equal(tt.want)) {
				t.Errorf("DeleteDeadline = (%s, %t), want (%s, %t)", got, has, tt.want, tt.wantHas)
			}
		})
	}
}

func TestCloneIsDeep(t *testing.T) {
	p := bobPolicy()
	c := p.Clone()
	c.AllowedPurposes[0] = PurposeMarketing
	if p.AllowedPurposes[0] != PurposeMedicalResearch {
		t.Fatal("Clone shares the purposes slice")
	}
}

func TestNextVersion(t *testing.T) {
	p := alicePolicy()
	next := p.NextVersion(t0.Add(48 * time.Hour))
	if next.Version != 2 {
		t.Errorf("Version = %d, want 2", next.Version)
	}
	if p.Version != 1 {
		t.Error("NextVersion mutated the receiver")
	}
	if !next.IssuedAt.Equal(t0.Add(48 * time.Hour)) {
		t.Error("IssuedAt not set")
	}
}

func TestSummary(t *testing.T) {
	p := bobPolicy()
	p.MaxUses = 3
	p.NotifyOnUse = true
	s := p.Summary()
	for _, want := range []string{"medical-research", "maxUses=3", "notify-on-use"} {
		if !strings.Contains(s, want) {
			t.Errorf("Summary %q missing %q", s, want)
		}
	}
	if s2 := New("https://x/r", "o", t0).Summary(); !strings.Contains(s2, "unconstrained") {
		t.Errorf("empty policy summary = %q", s2)
	}
}
