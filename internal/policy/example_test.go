package policy_test

import (
	"fmt"
	"time"

	"repro/internal/policy"
)

// ExamplePolicy_Evaluate shows the paper's running example: Bob's medical
// dataset may only be used for medical purposes.
func ExamplePolicy_Evaluate() {
	issued := time.Date(2023, 10, 9, 0, 0, 0, 0, time.UTC)
	p := policy.New("https://bob.pod/medical/ds1", "https://bob.pod/profile#me", issued)
	p.AllowedPurposes = []policy.Purpose{policy.PurposeMedicalResearch}

	ctx := policy.UsageContext{
		Now:         issued.Add(time.Hour),
		Purpose:     policy.PurposeMedicalResearch,
		Action:      policy.ActionUse,
		RetrievedAt: issued,
	}
	fmt.Println(p.Evaluate(ctx))

	ctx.Purpose = policy.PurposeMarketing
	fmt.Println(p.Evaluate(ctx))
	// Output:
	// permit
	// deny [purpose-not-allowed]
}

// ExampleObligationsFor shows how shortening retention (Alice's policy
// change) turns into concrete device-side obligations.
func ExampleObligationsFor() {
	issued := time.Date(2023, 10, 9, 0, 0, 0, 0, time.UTC)
	v2 := policy.New("https://alice.pod/web/browsing.csv", "https://alice.pod/profile#me", issued)
	v2.Version = 2
	v2.MaxRetention = 7 * 24 * time.Hour // shortened from one month

	// A copy retrieved 9 days ago is already past the new deadline.
	obs := policy.ObligationsFor(v2, policy.HolderState{
		RetrievedAt: issued.Add(-9 * 24 * time.Hour),
		Purpose:     policy.PurposeWebAnalytics,
		Now:         issued,
	})
	for _, o := range obs {
		fmt.Println(o.Kind)
	}
	// Output:
	// delete-now
}
