package policy

import (
	"fmt"
	"time"
)

// ObligationKind classifies an action a copy-holder must take in response
// to a policy update (the Fig. 2(5) "execute actions according to the
// policy change" step).
type ObligationKind string

// Obligation kinds triggered by policy updates.
const (
	// ObligationDeleteNow requires immediate deletion of the local copy
	// (its deadline has already lapsed under the new policy).
	ObligationDeleteNow ObligationKind = "delete-now"
	// ObligationReschedule requires re-arming the deletion timer to the new
	// deadline.
	ObligationReschedule ObligationKind = "reschedule-deletion"
	// ObligationRevokeUse requires the holder to stop using the copy
	// because its declared purpose is no longer allowed. The copy may be
	// kept if retention still permits, but no further use may occur.
	ObligationRevokeUse ObligationKind = "revoke-use"
	// ObligationNone indicates the update does not affect this holder.
	ObligationNone ObligationKind = "none"
)

// HolderState is the per-copy state a TEE holds, needed to translate a
// policy update into concrete obligations.
type HolderState struct {
	// RetrievedAt is when this holder obtained its copy.
	RetrievedAt time.Time
	// Purpose is the declared purpose of the holding application.
	Purpose Purpose
	// Now is the instant of the update delivery.
	Now time.Time
}

// Obligation is a concrete action a holder must execute, derived from a
// policy update.
type Obligation struct {
	Kind ObligationKind
	// DeleteBy carries the (new) deadline for ObligationReschedule.
	DeleteBy time.Time
	// Reason is a human-readable explanation for audit logs.
	Reason string
}

// Diff summarises how a policy changed between two versions.
type Diff struct {
	// RetentionChanged reports a changed MaxRetention or ExpiresAt.
	RetentionChanged bool
	// PurposesNarrowed lists previously allowed purposes that are no longer
	// allowed. A nil slice with PurposesChanged=false means no change.
	PurposesNarrowed []Purpose
	// PurposesChanged reports any change to the purpose set.
	PurposesChanged bool
	// UsesChanged reports a changed MaxUses.
	UsesChanged bool
	// SharingTightened reports ProhibitSharing turning on.
	SharingTightened bool
	// NotifyChanged reports NotifyOnUse toggling.
	NotifyChanged bool
}

// Compute returns the difference between two versions of a policy.
// old and new must refer to the same resource.
func Compute(oldP, newP *Policy) (Diff, error) {
	var d Diff
	if oldP.ResourceIRI != newP.ResourceIRI {
		return d, fmt.Errorf("policy: diff across resources %q and %q",
			oldP.ResourceIRI, newP.ResourceIRI)
	}
	d.RetentionChanged = oldP.MaxRetention != newP.MaxRetention ||
		!oldP.ExpiresAt.Equal(newP.ExpiresAt)
	d.UsesChanged = oldP.MaxUses != newP.MaxUses
	d.SharingTightened = !oldP.ProhibitSharing && newP.ProhibitSharing
	d.NotifyChanged = oldP.NotifyOnUse != newP.NotifyOnUse

	oldAllowed := purposeSet(oldP.AllowedPurposes)
	newAllowed := purposeSet(newP.AllowedPurposes)
	if !purposeSetsEqual(oldAllowed, newAllowed) {
		d.PurposesChanged = true
		for pu := range oldAllowed {
			if !newP.PermitsPurpose(pu) {
				d.PurposesNarrowed = append(d.PurposesNarrowed, pu)
			}
		}
	}
	return d, nil
}

func purposeSet(ps []Purpose) map[Purpose]struct{} {
	// nil (unconstrained) is represented as {PurposeAny}.
	set := make(map[Purpose]struct{}, len(ps))
	if len(ps) == 0 {
		set[PurposeAny] = struct{}{}
		return set
	}
	for _, p := range ps {
		set[p] = struct{}{}
	}
	return set
}

func purposeSetsEqual(a, b map[Purpose]struct{}) bool {
	if len(a) != len(b) {
		return false
	}
	for p := range a {
		if _, ok := b[p]; !ok {
			return false
		}
	}
	return true
}

// ObligationsFor translates a policy update into the obligations a given
// holder must execute. This is the core of the paper's policy-modification
// scenario: after Alice shortens retention from one month to one week,
// holders whose copies are already older than a week must delete
// immediately; younger copies reschedule their timers. Bob's purpose
// change to "academic" revokes use for holders with non-academic purposes
// but, as in the paper, does not affect holders whose purpose remains
// allowed.
func ObligationsFor(newP *Policy, state HolderState) []Obligation {
	var out []Obligation

	if deadline, has := newP.DeleteDeadline(state.RetrievedAt); has {
		if state.Now.After(deadline) {
			out = append(out, Obligation{
				Kind:   ObligationDeleteNow,
				Reason: fmt.Sprintf("deadline %s already lapsed", deadline.UTC().Format(time.RFC3339)),
			})
		} else {
			out = append(out, Obligation{
				Kind:     ObligationReschedule,
				DeleteBy: deadline,
				Reason:   fmt.Sprintf("new deadline %s", deadline.UTC().Format(time.RFC3339)),
			})
		}
	}

	if !newP.PermitsPurpose(state.Purpose) {
		out = append(out, Obligation{
			Kind:   ObligationRevokeUse,
			Reason: fmt.Sprintf("purpose %q no longer allowed", state.Purpose),
		})
	}

	if len(out) == 0 {
		out = append(out, Obligation{Kind: ObligationNone, Reason: "update does not affect this holder"})
	}
	return out
}
