package contract

import (
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/chain"
	"repro/internal/cryptoutil"
	"repro/internal/simclock"
)

// kvContract is a small contract exercising the runtime surface: storage,
// events, reverts, and queries.
type kvContract struct{}

type kvArgs struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

func (kvContract) Call(env *Env, method string, args []byte) ([]byte, error) {
	var a kvArgs
	if len(args) > 0 {
		if err := json.Unmarshal(args, &a); err != nil {
			return nil, Revertf("bad args: %v", err)
		}
	}
	switch method {
	case "put":
		if a.Key == "" {
			return nil, Revertf("empty key")
		}
		if err := env.Set("kv/"+a.Key, []byte(a.Value)); err != nil {
			return nil, err
		}
		if err := env.Emit("Put", a.Key, []byte(a.Value)); err != nil {
			return nil, err
		}
		return json.Marshal(map[string]string{"stored": a.Key})
	case "del":
		if err := env.Delete("kv/" + a.Key); err != nil {
			return nil, err
		}
		return nil, nil
	case "putThenFail":
		if err := env.Set("kv/"+a.Key, []byte(a.Value)); err != nil {
			return nil, err
		}
		return nil, Revertf("changed my mind")
	case "whoami":
		return json.Marshal(map[string]string{
			"sender":   env.Sender.String(),
			"contract": env.Contract.String(),
		})
	case "blocktime":
		return json.Marshal(env.Block.Time.UnixNano())
	default:
		return nil, Revertf("unknown method %q", method)
	}
}

func (kvContract) Read(env *ReadEnv, method string, args []byte) ([]byte, error) {
	var a kvArgs
	if len(args) > 0 {
		if err := json.Unmarshal(args, &a); err != nil {
			return nil, err
		}
	}
	switch method {
	case "get":
		v, ok := env.Get("kv/" + a.Key)
		if !ok {
			return nil, errors.New("not found")
		}
		return v, nil
	case "keys":
		return json.Marshal(env.Keys("kv/"))
	default:
		return nil, errors.New("unknown query")
	}
}

var testGenesis = time.Date(2023, 10, 9, 0, 0, 0, 0, time.UTC)

func newKVNode(t *testing.T) (*chain.Node, *cryptoutil.KeyPair, cryptoutil.Address, *simclock.Sim) {
	t.Helper()
	rt := NewRuntime()
	addr := rt.Deploy("kv", kvContract{})
	key := cryptoutil.MustGenerateKey()
	clk := simclock.NewSim(testGenesis)
	node, err := chain.NewNode(chain.Config{
		Key:         key,
		Authorities: []cryptoutil.Address{key.Address()},
		Executor:    rt,
		Clock:       clk,
		GenesisTime: testGenesis,
	})
	if err != nil {
		t.Fatal(err)
	}
	return node, key, addr, clk
}

func submitAndSeal(t *testing.T, node *chain.Node, key *cryptoutil.KeyPair, contractAddr cryptoutil.Address, method string, args any) *chain.Receipt {
	t.Helper()
	tx, err := chain.NewTx(key, node.NonceFor(key.Address()), contractAddr, method, args, 500_000)
	if err != nil {
		t.Fatal(err)
	}
	hash, err := node.SubmitTx(tx)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := node.Seal(); err != nil {
		t.Fatal(err)
	}
	r := node.Receipt(hash)
	if r == nil {
		t.Fatal("no receipt after sealing")
	}
	return r
}

func TestAddressForDeterministic(t *testing.T) {
	a1 := AddressFor("kv")
	a2 := AddressFor("kv")
	b := AddressFor("other")
	if a1 != a2 {
		t.Fatal("AddressFor not deterministic")
	}
	if a1 == b {
		t.Fatal("different names collided")
	}
	if a1.IsZero() {
		t.Fatal("zero address derived")
	}
}

func TestRuntimeCallStoresAndEmits(t *testing.T) {
	node, key, addr, _ := newKVNode(t)
	r := submitAndSeal(t, node, key, addr, "put", kvArgs{Key: "a", Value: "1"})
	if !r.Succeeded() {
		t.Fatalf("receipt: %+v", r)
	}
	if string(r.Return) != `{"stored":"a"}` {
		t.Fatalf("Return = %s", r.Return)
	}
	if len(r.Events) != 1 || r.Events[0].Topic != "Put" || r.Events[0].Contract != addr {
		t.Fatalf("events = %+v", r.Events)
	}
	out, err := node.Query(addr, "get", []byte(`{"key":"a"}`))
	if err != nil || string(out) != "1" {
		t.Fatalf("query = %q, %v", out, err)
	}
}

func TestRuntimeRevertRollsBackAndReportsReason(t *testing.T) {
	node, key, addr, _ := newKVNode(t)
	r := submitAndSeal(t, node, key, addr, "putThenFail", kvArgs{Key: "x", Value: "v"})
	if r.Succeeded() {
		t.Fatal("putThenFail should revert")
	}
	if !strings.Contains(r.Err, "changed my mind") {
		t.Fatalf("Err = %q", r.Err)
	}
	if _, err := node.Query(addr, "get", []byte(`{"key":"x"}`)); err == nil {
		t.Fatal("reverted write visible")
	}
	if r.GasUsed == 0 {
		t.Fatal("reverted tx must still consume gas")
	}
}

func TestRuntimeUnknownContractAndMethod(t *testing.T) {
	node, key, _, _ := newKVNode(t)
	bogus := AddressFor("missing")
	r := submitAndSeal(t, node, key, bogus, "put", kvArgs{Key: "a"})
	if r.Succeeded() || !strings.Contains(r.Err, "no contract") {
		t.Fatalf("receipt = %+v", r)
	}
	if _, err := node.Query(bogus, "get", nil); err == nil {
		t.Fatal("query to missing contract should fail")
	}

	addr := AddressFor("kv")
	r2 := submitAndSeal(t, node, key, addr, "nosuch", kvArgs{})
	if r2.Succeeded() || !errorsIsRevert(r2.Err) {
		t.Fatalf("receipt = %+v", r2)
	}
}

func errorsIsRevert(msg string) bool { return strings.Contains(msg, "reverted") }

func TestRuntimeEnvIdentityAndBlockContext(t *testing.T) {
	node, key, addr, clk := newKVNode(t)
	clk.Advance(time.Hour)
	r := submitAndSeal(t, node, key, addr, "whoami", nil)
	var ids map[string]string
	if err := json.Unmarshal(r.Return, &ids); err != nil {
		t.Fatal(err)
	}
	if ids["sender"] != key.Address().String() || ids["contract"] != addr.String() {
		t.Fatalf("identities = %v", ids)
	}

	clk.Advance(time.Hour)
	r2 := submitAndSeal(t, node, key, addr, "blocktime", nil)
	var nanos int64
	if err := json.Unmarshal(r2.Return, &nanos); err != nil {
		t.Fatal(err)
	}
	if got := time.Unix(0, nanos).UTC(); !got.Equal(testGenesis.Add(2 * time.Hour)) {
		t.Fatalf("block time = %s, want %s", got, testGenesis.Add(2*time.Hour))
	}
}

func TestRuntimeOutOfGas(t *testing.T) {
	node, key, addr, _ := newKVNode(t)
	big := strings.Repeat("x", 4096)
	tx, err := chain.NewTx(key, 0, addr, "put", kvArgs{Key: "big", Value: big}, chain.GasTxBase+100)
	if err != nil {
		t.Fatal(err)
	}
	hash, err := node.SubmitTx(tx)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := node.Seal(); err != nil {
		t.Fatal(err)
	}
	r := node.Receipt(hash)
	if r.Succeeded() {
		t.Fatal("underfunded tx should revert")
	}
	if !strings.Contains(r.Err, "out of gas") {
		t.Fatalf("Err = %q", r.Err)
	}
	if r.GasUsed != tx.GasLimit {
		t.Fatalf("GasUsed = %d, want full limit %d", r.GasUsed, tx.GasLimit)
	}
}

func TestRuntimeStorageIsolationBetweenContracts(t *testing.T) {
	rt := NewRuntime()
	a := rt.Deploy("kv-a", kvContract{})
	b := rt.Deploy("kv-b", kvContract{})
	key := cryptoutil.MustGenerateKey()
	node, err := chain.NewNode(chain.Config{
		Key:         key,
		Authorities: []cryptoutil.Address{key.Address()},
		Executor:    rt,
		GenesisTime: testGenesis,
	})
	if err != nil {
		t.Fatal(err)
	}
	r := submitAndSeal(t, node, key, a, "put", kvArgs{Key: "shared", Value: "from-a"})
	if !r.Succeeded() {
		t.Fatalf("receipt: %+v", r)
	}
	if _, err := node.Query(b, "get", []byte(`{"key":"shared"}`)); err == nil {
		t.Fatal("contract B can read contract A's storage")
	}
	out, err := node.Query(a, "get", []byte(`{"key":"shared"}`))
	if err != nil || string(out) != "from-a" {
		t.Fatalf("query A = %q, %v", out, err)
	}
}

func TestEnvKeysListsSorted(t *testing.T) {
	node, key, addr, _ := newKVNode(t)
	for _, k := range []string{"zeta", "alpha", "mid"} {
		r := submitAndSeal(t, node, key, addr, "put", kvArgs{Key: k, Value: "v"})
		if !r.Succeeded() {
			t.Fatalf("put %s: %+v", k, r)
		}
	}
	out, err := node.Query(addr, "keys", nil)
	if err != nil {
		t.Fatal(err)
	}
	var keys []string
	if err := json.Unmarshal(out, &keys); err != nil {
		t.Fatal(err)
	}
	// Keys are contract-local (the contract's own "kv/" prefix remains).
	want := []string{"kv/alpha", "kv/mid", "kv/zeta"}
	if len(keys) != 3 || keys[0] != want[0] || keys[1] != want[1] || keys[2] != want[2] {
		t.Fatalf("keys = %v, want %v", keys, want)
	}
}

func TestEnvDelete(t *testing.T) {
	node, key, addr, _ := newKVNode(t)
	submitAndSeal(t, node, key, addr, "put", kvArgs{Key: "gone", Value: "v"})
	r := submitAndSeal(t, node, key, addr, "del", kvArgs{Key: "gone"})
	if !r.Succeeded() {
		t.Fatalf("del: %+v", r)
	}
	if _, err := node.Query(addr, "get", []byte(`{"key":"gone"}`)); err == nil {
		t.Fatal("deleted key still readable")
	}
}

func TestRevertfWrapsErrRevert(t *testing.T) {
	err := Revertf("reason %d", 42)
	if !errors.Is(err, ErrRevert) {
		t.Fatal("Revertf should wrap ErrRevert")
	}
	if !strings.Contains(err.Error(), "reason 42") {
		t.Fatalf("message = %q", err.Error())
	}
}

// TestRuntimeConcurrentExecution pins the re-entrancy audit for the
// chain's parallel scheduler: many goroutines driving ExecuteTx (and
// queries) through one Runtime concurrently, each against its own state,
// must neither race (-race) nor cross-contaminate results — the runtime
// shares nothing between calls except the registry maps, which are
// read-only after Deploy.
func TestRuntimeConcurrentExecution(t *testing.T) {
	rt := NewRuntime()
	addr := rt.Deploy("kv", kvContract{})
	bctx := chain.BlockContext{Number: 1, Time: testGenesis}

	const workers = 8
	const txsPerWorker = 50
	var wg sync.WaitGroup
	for w := range workers {
		wg.Add(1)
		go func() {
			defer wg.Done()
			key := cryptoutil.MustGenerateKey()
			st := chain.NewState()
			for i := range txsPerWorker {
				k := fmt.Sprintf("w%d-%d", w, i)
				tx, err := chain.NewTx(key, uint64(i), addr, "put", kvArgs{Key: k, Value: k}, 500_000)
				if err != nil {
					t.Error(err)
					return
				}
				r := rt.ExecuteTx(st, tx, bctx)
				if r.Status != chain.StatusOK {
					t.Errorf("worker %d tx %d reverted: %s", w, i, r.Err)
					return
				}
				if len(r.Events) != 1 || r.Events[0].Key != k {
					t.Errorf("worker %d tx %d events cross-contaminated: %+v", w, i, r.Events)
					return
				}
				got, err := rt.Query(st, addr, "get", mustJSON(t, kvArgs{Key: k}), bctx)
				if err != nil || string(got) != k {
					t.Errorf("worker %d query %q = %q, %v", w, k, got, err)
					return
				}
			}
			// Every write this worker made, and only those, landed in its
			// own state.
			if n := len(st.Keys(addr.String() + "/kv/")); n != txsPerWorker {
				t.Errorf("worker %d state holds %d keys, want %d", w, n, txsPerWorker)
			}
		}()
	}
	wg.Wait()
}

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	buf, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return buf
}
