package contract

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/chain"
	"repro/internal/cryptoutil"
)

// rwContract exercises Env.Get / Env.Keys / Env.GasUsed inside a
// state-mutating call (read-modify-write counter).
type rwContract struct{}

func (rwContract) Call(env *Env, method string, args []byte) ([]byte, error) {
	switch method {
	case "incr":
		var n int64
		if raw, ok, err := env.Get("counter"); err != nil {
			return nil, err
		} else if ok {
			if err := json.Unmarshal(raw, &n); err != nil {
				return nil, Revertf("corrupt counter: %v", err)
			}
		}
		n++
		raw, _ := json.Marshal(n)
		if err := env.Set("counter", raw); err != nil {
			return nil, err
		}
		return json.Marshal(map[string]any{"value": n, "gasSoFar": env.GasUsed()})
	case "fanout":
		// Write several keys, then list them back through Env.Keys.
		for _, k := range []string{"x/1", "x/2", "x/3"} {
			if err := env.Set(k, []byte("v")); err != nil {
				return nil, err
			}
		}
		keys, err := env.Keys("x/")
		if err != nil {
			return nil, err
		}
		return json.Marshal(keys)
	default:
		return nil, Revertf("unknown method %q", method)
	}
}

func (rwContract) Read(env *ReadEnv, method string, args []byte) ([]byte, error) {
	return nil, Revertf("no queries")
}

func TestEnvReadModifyWrite(t *testing.T) {
	rt := NewRuntime()
	addr := rt.Deploy("rw", rwContract{})
	key := cryptoutil.MustGenerateKey()
	node, err := chain.NewNode(chain.Config{
		Key:         key,
		Authorities: []cryptoutil.Address{key.Address()},
		Executor:    rt,
		GenesisTime: testGenesis,
	})
	if err != nil {
		t.Fatal(err)
	}
	for want := int64(1); want <= 3; want++ {
		r := submitAndSeal(t, node, key, addr, "incr", nil)
		if !r.Succeeded() {
			t.Fatalf("incr %d: %+v", want, r)
		}
		var out struct {
			Value    int64  `json:"value"`
			GasSoFar uint64 `json:"gasSoFar"`
		}
		if err := json.Unmarshal(r.Return, &out); err != nil {
			t.Fatal(err)
		}
		if out.Value != want {
			t.Fatalf("counter = %d, want %d", out.Value, want)
		}
		if out.GasSoFar <= chain.GasTxBase || out.GasSoFar > r.GasUsed {
			t.Fatalf("mid-call GasUsed = %d, receipt = %d", out.GasSoFar, r.GasUsed)
		}
	}
}

func TestEnvKeysInsideCall(t *testing.T) {
	rt := NewRuntime()
	addr := rt.Deploy("rw", rwContract{})
	key := cryptoutil.MustGenerateKey()
	node, err := chain.NewNode(chain.Config{
		Key:         key,
		Authorities: []cryptoutil.Address{key.Address()},
		Executor:    rt,
		GenesisTime: testGenesis,
	})
	if err != nil {
		t.Fatal(err)
	}
	r := submitAndSeal(t, node, key, addr, "fanout", nil)
	if !r.Succeeded() {
		t.Fatalf("fanout: %+v", r)
	}
	var keys []string
	if err := json.Unmarshal(r.Return, &keys); err != nil {
		t.Fatal(err)
	}
	if len(keys) != 3 || !strings.HasPrefix(keys[0], "x/") {
		t.Fatalf("keys = %v", keys)
	}
}
