// Package contract provides the smart-contract runtime hosted on the
// blockchain substrate: a registry of native-Go contracts with
// deterministic addresses, gas-metered storage and event emission, and the
// chain.Executor implementation that dispatches transactions and read-only
// queries to contract methods.
//
// Contracts are ordinary Go values implementing the Contract interface.
// They must be deterministic: all state lives in the chain state store,
// all time comes from the block context, and iteration over storage uses
// sorted key order.
package contract

import (
	"errors"
	"fmt"

	"repro/internal/chain"
	"repro/internal/cryptoutil"
)

// Contract is a deployed application. Implementations dispatch on the
// method name.
//
// Concurrency contract: the chain's parallel transaction scheduler may
// run Call concurrently from multiple goroutines — each invocation with
// its own Env over a distinct StateRW — so implementations must keep ALL
// mutable state in contract storage (via env.Get/Set/Delete), never in
// fields on the Contract value. Fields set at construction and read-only
// thereafter (configuration) are fine.
type Contract interface {
	// Call executes a state-mutating method. Returning a non-nil error
	// reverts the transaction (all storage effects are rolled back).
	Call(env *Env, method string, args []byte) ([]byte, error)
	// Read executes a read-only method against current state.
	Read(env *ReadEnv, method string, args []byte) ([]byte, error)
}

// AddressFor derives the deterministic deployment address for a contract
// name. All nodes deploy the same contracts under the same names, so the
// addresses agree cluster-wide.
func AddressFor(name string) cryptoutil.Address {
	h := cryptoutil.HashOf([]byte("contract|" + name))
	var a cryptoutil.Address
	copy(a[:], h[len(h)-cryptoutil.AddressLen:])
	return a
}

// Env is the execution environment for state-mutating calls. Storage
// access and event emission are gas-metered against the transaction's gas
// limit.
type Env struct {
	// Contract is the executing contract's address.
	Contract cryptoutil.Address
	// Sender is the transaction sender.
	Sender cryptoutil.Address
	// SenderKey is the sender's public key bytes (for contracts that
	// verify signatures over off-chain payloads, e.g. TEE evidence).
	SenderKey []byte
	// Block exposes the block number and timestamp.
	Block chain.BlockContext

	state  chain.StateRW
	meter  *chain.GasMeter
	events []chain.Event
}

// storageKey namespaces a contract-local key into the global state.
func storageKey(contract cryptoutil.Address, key string) string {
	return contract.String() + "/" + key
}

// Get reads a storage key, charging read gas.
func (e *Env) Get(key string) ([]byte, bool, error) {
	if err := e.meter.Charge(chain.GasStorageGet); err != nil {
		return nil, false, err
	}
	v, ok := e.state.Get(storageKey(e.Contract, key))
	return v, ok, nil
}

// Set writes a storage key, charging write gas proportional to the value
// size.
func (e *Env) Set(key string, value []byte) error {
	if err := e.meter.Charge(chain.GasStorageSet + uint64(len(value))*chain.GasStoragePerByte); err != nil {
		return err
	}
	e.state.Set(storageKey(e.Contract, key), value)
	return nil
}

// Delete removes a storage key, charging delete gas.
func (e *Env) Delete(key string) error {
	if err := e.meter.Charge(chain.GasStorageDelete); err != nil {
		return err
	}
	e.state.Delete(storageKey(e.Contract, key))
	return nil
}

// Keys lists contract-local keys under a prefix in sorted order, charging
// one read per returned key.
func (e *Env) Keys(prefix string) ([]string, error) {
	full := e.state.Keys(storageKey(e.Contract, prefix))
	out := make([]string, 0, len(full))
	strip := len(storageKey(e.Contract, ""))
	for _, k := range full {
		if err := e.meter.Charge(chain.GasStorageGet); err != nil {
			return nil, err
		}
		out = append(out, k[strip:])
	}
	return out, nil
}

// Emit records an event, charging per payload byte.
func (e *Env) Emit(topic, key string, payload []byte) error {
	cost := chain.GasEventBase + uint64(len(payload))*chain.GasEventPerByte
	if err := e.meter.Charge(cost); err != nil {
		return err
	}
	e.events = append(e.events, chain.Event{
		Contract: e.Contract,
		Topic:    topic,
		Key:      key,
		Data:     append([]byte(nil), payload...),
	})
	return nil
}

// GasUsed reports gas consumed so far in this call.
func (e *Env) GasUsed() uint64 { return e.meter.Used() }

// ReadEnv is the environment for read-only queries: storage reads without
// gas accounting and no event emission.
type ReadEnv struct {
	// Contract is the queried contract's address.
	Contract cryptoutil.Address
	// Block exposes the block number and timestamp at the head.
	Block chain.BlockContext

	state chain.StateRW
}

// Get reads a storage key.
func (e *ReadEnv) Get(key string) ([]byte, bool) {
	return e.state.Get(storageKey(e.Contract, key))
}

// Keys lists contract-local keys under a prefix in sorted order.
func (e *ReadEnv) Keys(prefix string) []string {
	full := e.state.Keys(storageKey(e.Contract, prefix))
	out := make([]string, 0, len(full))
	strip := len(storageKey(e.Contract, ""))
	for _, k := range full {
		out = append(out, k[strip:])
	}
	return out
}

// Revert errors: returned by contracts to abort with a reason. Wrapping
// ErrRevert lets callers distinguish business-rule reverts from
// infrastructure failures.
var ErrRevert = errors.New("contract: reverted")

// Revertf builds a revert error with a formatted reason.
func Revertf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrRevert, fmt.Sprintf(format, args...))
}

// Runtime is the chain.Executor that hosts deployed contracts.
//
// Re-entrancy and concurrency (audited for the parallel scheduler): the
// two maps are written only by Deploy and read by ExecuteTx/Query, so
// the runtime is safe for any number of concurrent executions PROVIDED
// all Deploy calls happen before execution starts — the deployment
// pattern every binary and the core.Deployment wiring follow. Each
// ExecuteTx builds a fresh Env (meter, event buffer) on its own stack;
// nothing is shared between concurrent calls except the caller-supplied
// StateRW, which is the scheduler's per-transaction overlay and
// internally synchronized. Contracts themselves must honour the
// Contract interface's statelessness contract.
type Runtime struct {
	contracts map[cryptoutil.Address]Contract
	names     map[cryptoutil.Address]string
}

var _ chain.Executor = (*Runtime)(nil)

// NewRuntime returns an empty runtime.
func NewRuntime() *Runtime {
	return &Runtime{
		contracts: make(map[cryptoutil.Address]Contract),
		names:     make(map[cryptoutil.Address]string),
	}
}

// Deploy registers a contract under a name and returns its deterministic
// address. Deploying the same name twice replaces the implementation
// (useful in tests); addresses never change.
func (r *Runtime) Deploy(name string, c Contract) cryptoutil.Address {
	addr := AddressFor(name)
	r.contracts[addr] = c
	r.names[addr] = name
	return addr
}

// ExecuteTx implements chain.Executor.
func (r *Runtime) ExecuteTx(st chain.StateRW, tx *chain.Tx, bctx chain.BlockContext) *chain.Receipt {
	meter := chain.NewGasMeter(tx.GasLimit)
	receipt := &chain.Receipt{Status: chain.StatusOK}

	revert := func(err error) *chain.Receipt {
		receipt.Status = chain.StatusReverted
		receipt.Err = err.Error()
		receipt.GasUsed = meter.Used()
		return receipt
	}

	if err := meter.Charge(chain.GasTxBase + uint64(len(tx.Args))*chain.GasPerArgByte); err != nil {
		return revert(err)
	}
	c, ok := r.contracts[tx.Contract]
	if !ok {
		return revert(fmt.Errorf("contract: no contract at %s", tx.Contract))
	}
	env := &Env{
		Contract:  tx.Contract,
		Sender:    tx.From,
		SenderKey: tx.SenderKey,
		Block:     bctx,
		state:     st,
		meter:     meter,
	}
	ret, err := c.Call(env, tx.Method, tx.Args)
	if err != nil {
		return revert(err)
	}
	receipt.Return = ret
	receipt.Events = env.events
	receipt.GasUsed = meter.Used()
	return receipt
}

// Query implements chain.Executor.
func (r *Runtime) Query(st chain.StateRW, contractAddr cryptoutil.Address, method string, args []byte, bctx chain.BlockContext) ([]byte, error) {
	c, ok := r.contracts[contractAddr]
	if !ok {
		return nil, fmt.Errorf("contract: no contract at %s", contractAddr)
	}
	env := &ReadEnv{Contract: contractAddr, Block: bctx, state: st}
	return c.Read(env, method, args)
}
