package cryptoutil

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestGenerateKeyAndAddress(t *testing.T) {
	k1 := MustGenerateKey()
	k2 := MustGenerateKey()
	if k1.Address() == k2.Address() {
		t.Fatal("two fresh keys derived the same address")
	}
	if k1.Address().IsZero() {
		t.Fatal("derived address is zero")
	}
	if got := AddressOf(k1.Public()); got != k1.Address() {
		t.Fatalf("AddressOf = %s, want %s", got, k1.Address())
	}
}

func TestAddressStringRoundTrip(t *testing.T) {
	k := MustGenerateKey()
	addr := k.Address()
	parsed, err := ParseAddress(addr.String())
	if err != nil {
		t.Fatalf("ParseAddress(%q): %v", addr.String(), err)
	}
	if parsed != addr {
		t.Fatalf("round trip mismatch: %s != %s", parsed, addr)
	}
	// Also without the 0x prefix.
	parsed2, err := ParseAddress(addr.String()[2:])
	if err != nil || parsed2 != addr {
		t.Fatalf("bare hex parse failed: %v", err)
	}
}

func TestParseAddressErrors(t *testing.T) {
	tests := []string{"", "0x1234", "zzzz", "0x" + string(make([]byte, 40))}
	for _, in := range tests {
		if _, err := ParseAddress(in); err == nil {
			t.Errorf("ParseAddress(%q) succeeded, want error", in)
		}
	}
}

func TestAddressShort(t *testing.T) {
	k := MustGenerateKey()
	s := k.Address().Short()
	if len(s) != 2+4+2+4 {
		t.Errorf("Short() = %q, unexpected length", s)
	}
}

func TestPublicKeyRoundTrip(t *testing.T) {
	k := MustGenerateKey()
	enc := k.PublicBytes()
	if len(enc) != 65 || enc[0] != 4 {
		t.Fatalf("unexpected public key encoding: len=%d first=%d", len(enc), enc[0])
	}
	pub, err := ParsePublicKey(enc)
	if err != nil {
		t.Fatalf("ParsePublicKey: %v", err)
	}
	if !pub.Equal(k.Public()) {
		t.Fatal("decoded key differs from original")
	}
}

func TestParsePublicKeyRejectsGarbage(t *testing.T) {
	for _, in := range [][]byte{nil, {}, {4, 1, 2}, bytes.Repeat([]byte{0xff}, 65)} {
		if _, err := ParsePublicKey(in); err == nil {
			t.Errorf("ParsePublicKey(%d bytes) succeeded, want error", len(in))
		}
	}
}

func TestSignVerify(t *testing.T) {
	k := MustGenerateKey()
	msg := []byte("usage control in solid")
	sig, err := k.Sign(msg)
	if err != nil {
		t.Fatalf("Sign: %v", err)
	}
	if !Verify(k.Public(), msg, sig) {
		t.Fatal("Verify rejected a valid signature")
	}
	if Verify(k.Public(), []byte("tampered"), sig) {
		t.Fatal("Verify accepted a signature over a different message")
	}
	other := MustGenerateKey()
	if Verify(other.Public(), msg, sig) {
		t.Fatal("Verify accepted a signature under the wrong key")
	}
}

func TestVerifyWithAddress(t *testing.T) {
	k := MustGenerateKey()
	msg := []byte("tx payload")
	sig, err := k.Sign(msg)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyWithAddress(k.Address(), k.PublicBytes(), msg, sig); err != nil {
		t.Fatalf("VerifyWithAddress: %v", err)
	}
	// Wrong address.
	other := MustGenerateKey()
	if err := VerifyWithAddress(other.Address(), k.PublicBytes(), msg, sig); err == nil {
		t.Fatal("accepted mismatched address")
	}
	// Tampered message.
	if err := VerifyWithAddress(k.Address(), k.PublicBytes(), []byte("x"), sig); err == nil {
		t.Fatal("accepted tampered message")
	}
	// Garbage key bytes.
	if err := VerifyWithAddress(k.Address(), []byte{1, 2, 3}, msg, sig); err == nil {
		t.Fatal("accepted garbage public key")
	}
}

func TestHashOf(t *testing.T) {
	h1 := HashOf([]byte("ab"), []byte("c"))
	h2 := HashOf([]byte("a"), []byte("bc"))
	if h1 == h2 {
		t.Fatal("length prefixing failed: boundary-shifted inputs collide")
	}
	if h1.IsZero() {
		t.Fatal("hash should not be zero")
	}
	if h1 != HashOf([]byte("ab"), []byte("c")) {
		t.Fatal("HashOf is not deterministic")
	}
	if len(h1.String()) != 2+64 {
		t.Errorf("String() = %q", h1.String())
	}
	if len(h1.Short()) != 2+8 {
		t.Errorf("Short() = %q", h1.Short())
	}
}

// TestSignVerifyProperty: any message signed by a key verifies under that
// key and fails under a flipped message bit.
func TestSignVerifyProperty(t *testing.T) {
	k := MustGenerateKey()
	f := func(msg []byte) bool {
		sig, err := k.Sign(msg)
		if err != nil {
			return false
		}
		if !Verify(k.Public(), msg, sig) {
			return false
		}
		mutated := append([]byte{0xA5}, msg...)
		return !Verify(k.Public(), mutated, sig)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestPrivateKeyRoundTrip: PrivateBytes/ParsePrivateKey preserve the
// identity (address) and signing capability of a key pair.
func TestPrivateKeyRoundTrip(t *testing.T) {
	k := MustGenerateKey()
	der, err := k.PrivateBytes()
	if err != nil {
		t.Fatal(err)
	}
	k2, err := ParsePrivateKey(der)
	if err != nil {
		t.Fatal(err)
	}
	if k2.Address() != k.Address() {
		t.Fatalf("address changed across serialization: %s != %s", k2.Address(), k.Address())
	}
	msg := []byte("round trip")
	sig, err := k2.Sign(msg)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyWithAddress(k.Address(), k.PublicBytes(), msg, sig); err != nil {
		t.Fatalf("signature from reparsed key rejected: %v", err)
	}
	if _, err := ParsePrivateKey([]byte("not a key")); err == nil {
		t.Fatal("garbage accepted as a private key")
	}
}
