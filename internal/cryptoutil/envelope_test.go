package cryptoutil

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func TestEnvelopeRoundTrip(t *testing.T) {
	key := DeriveEnvelopeKey([]byte("shared-secret"), "policy")
	plain := []byte(`{"resource":"https://bob.pod/medical/ds1"}`)
	blob, err := EncryptEnvelope(key, plain)
	if err != nil {
		t.Fatal(err)
	}
	if len(blob) != len(plain)+EnvelopeOverhead {
		t.Fatalf("overhead = %d, want %d", len(blob)-len(plain), EnvelopeOverhead)
	}
	if bytes.Contains(blob, []byte("bob.pod")) {
		t.Fatal("plaintext leaks into envelope")
	}
	back, err := DecryptEnvelope(key, blob)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, plain) {
		t.Fatal("round trip mismatch")
	}
}

func TestEnvelopeWrongKey(t *testing.T) {
	k1 := DeriveEnvelopeKey([]byte("secret-1"), "policy")
	k2 := DeriveEnvelopeKey([]byte("secret-2"), "policy")
	blob, err := EncryptEnvelope(k1, []byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecryptEnvelope(k2, blob); !errors.Is(err, ErrEnvelope) {
		t.Fatalf("wrong-key decrypt: %v", err)
	}
}

func TestEnvelopeLabelSeparation(t *testing.T) {
	secret := []byte("same secret")
	if bytes.Equal(DeriveEnvelopeKey(secret, "policy"), DeriveEnvelopeKey(secret, "location")) {
		t.Fatal("labels do not separate keys")
	}
}

func TestEnvelopeTamperAndTruncation(t *testing.T) {
	key := DeriveEnvelopeKey([]byte("s"), "l")
	blob, err := EncryptEnvelope(key, []byte("payload"))
	if err != nil {
		t.Fatal(err)
	}
	tampered := append([]byte(nil), blob...)
	tampered[len(tampered)-1] ^= 1
	if _, err := DecryptEnvelope(key, tampered); !errors.Is(err, ErrEnvelope) {
		t.Fatalf("tampered: %v", err)
	}
	if _, err := DecryptEnvelope(key, blob[:4]); !errors.Is(err, ErrEnvelope) {
		t.Fatalf("truncated: %v", err)
	}
}

func TestEnvelopeBadKeyLength(t *testing.T) {
	if _, err := EncryptEnvelope([]byte("short"), []byte("x")); err == nil {
		t.Fatal("short key accepted")
	}
	if _, err := DecryptEnvelope([]byte("short"), []byte("x")); err == nil {
		t.Fatal("short key accepted on decrypt")
	}
}

func TestEnvelopeProperty(t *testing.T) {
	key := DeriveEnvelopeKey([]byte("property secret"), "t")
	f := func(plain []byte) bool {
		blob, err := EncryptEnvelope(key, plain)
		if err != nil {
			return false
		}
		back, err := DecryptEnvelope(key, blob)
		if err != nil {
			return false
		}
		return bytes.Equal(back, plain)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
