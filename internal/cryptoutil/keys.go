// Package cryptoutil provides the cryptographic primitives shared by the
// blockchain, TEE, market, and Solid substrates: ECDSA P-256 key pairs,
// 20-byte addresses, message signing, and signed certificate envelopes with
// a minimal certificate authority.
//
// Everything is built on the Go standard library (crypto/ecdsa,
// crypto/sha256, crypto/x509 for key encoding).
package cryptoutil

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/sha256"
	"crypto/subtle"
	"crypto/x509"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// AddressLen is the length of an Address in bytes.
const AddressLen = 20

// Address identifies a key holder: the trailing 20 bytes of the SHA-256
// hash of the DER-encoded public key (mirroring Ethereum's construction).
type Address [AddressLen]byte

// ZeroAddress is the all-zero address, used as "no address".
var ZeroAddress Address

// IsZero reports whether the address is the zero address.
func (a Address) IsZero() bool { return a == ZeroAddress }

// String returns the 0x-prefixed hex form of the address.
func (a Address) String() string { return "0x" + hex.EncodeToString(a[:]) }

// Short returns an abbreviated form for logs ("0x1234..abcd").
func (a Address) Short() string {
	s := hex.EncodeToString(a[:])
	return "0x" + s[:4] + ".." + s[len(s)-4:]
}

// ParseAddress parses a 0x-prefixed (or bare) 40-hex-digit address.
func ParseAddress(s string) (Address, error) {
	var a Address
	if len(s) >= 2 && s[0] == '0' && (s[1] == 'x' || s[1] == 'X') {
		s = s[2:]
	}
	raw, err := hex.DecodeString(s)
	if err != nil {
		return a, fmt.Errorf("cryptoutil: parse address: %w", err)
	}
	if len(raw) != AddressLen {
		return a, fmt.Errorf("cryptoutil: address must be %d bytes, got %d", AddressLen, len(raw))
	}
	copy(a[:], raw)
	return a, nil
}

// KeyPair is an ECDSA P-256 key pair with its derived address.
type KeyPair struct {
	priv *ecdsa.PrivateKey
	addr Address
}

// GenerateKey creates a new P-256 key pair using the given entropy source
// (crypto/rand.Reader if nil).
func GenerateKey(entropy io.Reader) (*KeyPair, error) {
	if entropy == nil {
		entropy = rand.Reader
	}
	priv, err := ecdsa.GenerateKey(elliptic.P256(), entropy)
	if err != nil {
		return nil, fmt.Errorf("cryptoutil: generate key: %w", err)
	}
	return &KeyPair{priv: priv, addr: AddressOf(&priv.PublicKey)}, nil
}

// MustGenerateKey is GenerateKey with crypto/rand that panics on failure.
// It is intended for tests and example binaries where entropy failure is
// unrecoverable anyway.
func MustGenerateKey() *KeyPair {
	kp, err := GenerateKey(nil)
	if err != nil {
		panic(err)
	}
	return kp
}

// Public returns the public key.
func (k *KeyPair) Public() *ecdsa.PublicKey { return &k.priv.PublicKey }

// PrivateBytes returns the SEC 1 / ASN.1 DER encoding of the private
// key, as durable node and pod-owner identities are persisted on disk.
func (k *KeyPair) PrivateBytes() ([]byte, error) {
	der, err := x509.MarshalECPrivateKey(k.priv)
	if err != nil {
		return nil, fmt.Errorf("cryptoutil: marshal private key: %w", err)
	}
	return der, nil
}

// ParsePrivateKey decodes a SEC 1 DER private key previously produced by
// PrivateBytes.
func ParsePrivateKey(der []byte) (*KeyPair, error) {
	priv, err := x509.ParseECPrivateKey(der)
	if err != nil {
		return nil, fmt.Errorf("cryptoutil: parse private key: %w", err)
	}
	if priv.Curve != elliptic.P256() {
		return nil, errors.New("cryptoutil: private key is not P-256")
	}
	return &KeyPair{priv: priv, addr: AddressOf(&priv.PublicKey)}, nil
}

// LoadOrCreateKeyFile returns the key pair persisted at path (SEC 1
// DER), generating one and writing it there (0600, parent directories
// created) when the file does not exist. Durable binaries use it so a
// restarted process keeps its signing identity. A file that exists but
// does not parse is an error, never silently replaced.
func LoadOrCreateKeyFile(path string) (*KeyPair, error) {
	if der, err := os.ReadFile(path); err == nil {
		key, err := ParsePrivateKey(der)
		if err != nil {
			return nil, fmt.Errorf("cryptoutil: key at %s: %w", path, err)
		}
		return key, nil
	}
	key, err := GenerateKey(nil)
	if err != nil {
		return nil, err
	}
	der, err := key.PrivateBytes()
	if err != nil {
		return nil, err
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return nil, fmt.Errorf("cryptoutil: key dir: %w", err)
	}
	if err := os.WriteFile(path, der, 0o600); err != nil {
		return nil, fmt.Errorf("cryptoutil: write key: %w", err)
	}
	return key, nil
}

// Address returns the address derived from the public key.
func (k *KeyPair) Address() Address { return k.addr }

// PublicBytes returns the uncompressed-point encoding of the public key.
func (k *KeyPair) PublicBytes() []byte { return MarshalPublicKey(&k.priv.PublicKey) }

// MarshalPublicKey encodes a public key as an uncompressed curve point
// (0x04 || X || Y, 65 bytes for P-256).
func MarshalPublicKey(pub *ecdsa.PublicKey) []byte {
	byteLen := (pub.Curve.Params().BitSize + 7) / 8
	out := make([]byte, 1+2*byteLen)
	out[0] = 4
	pub.X.FillBytes(out[1 : 1+byteLen])
	pub.Y.FillBytes(out[1+byteLen:])
	return out
}

// ParsePublicKey decodes an uncompressed P-256 curve point.
func ParsePublicKey(data []byte) (*ecdsa.PublicKey, error) {
	curve := elliptic.P256()
	x, y := elliptic.Unmarshal(curve, data)
	if x == nil {
		return nil, errors.New("cryptoutil: invalid public key encoding")
	}
	return &ecdsa.PublicKey{Curve: curve, X: x, Y: y}, nil
}

// AddressOf derives the address of a public key.
func AddressOf(pub *ecdsa.PublicKey) Address {
	sum := sha256.Sum256(MarshalPublicKey(pub))
	var a Address
	copy(a[:], sum[len(sum)-AddressLen:])
	return a
}

// Sign signs the SHA-256 digest of msg and returns an ASN.1 DER signature.
func (k *KeyPair) Sign(msg []byte) ([]byte, error) {
	digest := sha256.Sum256(msg)
	sig, err := ecdsa.SignASN1(rand.Reader, k.priv, digest[:])
	if err != nil {
		return nil, fmt.Errorf("cryptoutil: sign: %w", err)
	}
	return sig, nil
}

// Verify reports whether sig is a valid signature of msg under pub.
func Verify(pub *ecdsa.PublicKey, msg, sig []byte) bool {
	digest := sha256.Sum256(msg)
	return ecdsa.VerifyASN1(pub, digest[:], sig)
}

// VerifyWithAddress verifies a signature given the claimed public key bytes
// and checks that the key hashes to the expected address. This is the
// verification path used for blockchain transactions, where the sender
// includes its key material alongside the signature.
func VerifyWithAddress(addr Address, pubBytes, msg, sig []byte) error {
	pub, err := ParsePublicKey(pubBytes)
	if err != nil {
		return err
	}
	derived := AddressOf(pub)
	if subtle.ConstantTimeCompare(derived[:], addr[:]) != 1 {
		return fmt.Errorf("cryptoutil: public key address %s does not match claimed %s",
			derived, addr)
	}
	if !Verify(pub, msg, sig) {
		return errors.New("cryptoutil: signature verification failed")
	}
	return nil
}

// Hash returns the SHA-256 digest of the concatenation of the parts.
type Hash [32]byte

// String returns the 0x-prefixed hex form of the hash.
func (h Hash) String() string { return "0x" + hex.EncodeToString(h[:]) }

// Short returns an abbreviated form for logs.
func (h Hash) Short() string {
	s := hex.EncodeToString(h[:])
	return "0x" + s[:8]
}

// IsZero reports whether the hash is all zero.
func (h Hash) IsZero() bool { return h == Hash{} }

// HashOf returns the SHA-256 digest of the concatenation of parts.
func HashOf(parts ...[]byte) Hash {
	hsh := sha256.New()
	for _, p := range parts {
		// Length-prefix each part so that ("ab","c") != ("a","bc").
		var lenBuf [8]byte
		putUint64(lenBuf[:], uint64(len(p)))
		hsh.Write(lenBuf[:])
		hsh.Write(p)
	}
	var out Hash
	copy(out[:], hsh.Sum(nil))
	return out
}

func putUint64(b []byte, v uint64) {
	for i := 7; i >= 0; i-- {
		b[i] = byte(v)
		v >>= 8
	}
}
