package cryptoutil

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/rand"
	"crypto/sha256"
	"errors"
	"fmt"
	"io"
)

// Envelope encryption for on-chain metadata. Section V-1 of the paper
// notes that public ledgers expose usage policies and resource locations
// to every node, and that encryption-based approaches remedy this for
// confidentiality-sensitive deployments. EncryptEnvelope/DecryptEnvelope
// implement that remedy: AES-256-GCM under a key shared out of band with
// authorized parties. The encrypted-metadata ablation measures its cost.

// EnvelopeOverhead is the ciphertext expansion in bytes (nonce + GCM tag).
const EnvelopeOverhead = 12 + 16

// DeriveEnvelopeKey derives a 32-byte envelope key from a shared secret
// and a context label (domain separation).
func DeriveEnvelopeKey(secret []byte, label string) []byte {
	h := sha256.New()
	h.Write([]byte("envelope|" + label + "|"))
	h.Write(secret)
	return h.Sum(nil)
}

// EncryptEnvelope encrypts plaintext under a 32-byte key, returning
// nonce||ciphertext.
func EncryptEnvelope(key, plaintext []byte) ([]byte, error) {
	aead, err := newGCM(key)
	if err != nil {
		return nil, err
	}
	nonce := make([]byte, aead.NonceSize())
	if _, err := io.ReadFull(rand.Reader, nonce); err != nil {
		return nil, fmt.Errorf("cryptoutil: nonce: %w", err)
	}
	return append(nonce, aead.Seal(nil, nonce, plaintext, nil)...), nil
}

// ErrEnvelope is returned for undecryptable envelopes.
var ErrEnvelope = errors.New("cryptoutil: envelope decryption failed")

// DecryptEnvelope reverses EncryptEnvelope.
func DecryptEnvelope(key, blob []byte) ([]byte, error) {
	aead, err := newGCM(key)
	if err != nil {
		return nil, err
	}
	ns := aead.NonceSize()
	if len(blob) < ns {
		return nil, ErrEnvelope
	}
	pt, err := aead.Open(nil, blob[:ns], blob[ns:], nil)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrEnvelope, err)
	}
	return pt, nil
}

func newGCM(key []byte) (cipher.AEAD, error) {
	if len(key) != 32 {
		return nil, fmt.Errorf("cryptoutil: envelope key must be 32 bytes, got %d", len(key))
	}
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, err
	}
	return cipher.NewGCM(block)
}
