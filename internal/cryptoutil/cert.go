package cryptoutil

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"
)

// Certificate is a signed claim envelope: an issuer attests a set of
// string claims about a subject key for a validity window.
//
// Certificates serve two roles in the architecture:
//
//   - the data market issues payment certificates that consumers present to
//     Pod Managers (Section II of the paper), and
//   - the simulated TEE manufacturer CA issues device certificates that
//     root attestation quotes.
type Certificate struct {
	// Serial uniquely identifies the certificate within its issuer.
	Serial uint64 `json:"serial"`
	// Subject is the address of the certified key.
	Subject Address `json:"subject"`
	// SubjectKey is the uncompressed-point encoding of the certified key.
	SubjectKey []byte `json:"subjectKey"`
	// Claims carries the attested attributes (e.g. "feePaid": "resource-iri").
	Claims map[string]string `json:"claims"`
	// NotBefore and NotAfter bound the validity window.
	NotBefore time.Time `json:"notBefore"`
	NotAfter  time.Time `json:"notAfter"`
	// Issuer is the address of the signing authority.
	Issuer Address `json:"issuer"`
	// Signature is the issuer's ASN.1 ECDSA signature over SigningBytes.
	Signature []byte `json:"signature"`
}

// SigningBytes returns the deterministic byte encoding that the issuer
// signs: every field except the signature, with claims in sorted key order.
func (c *Certificate) SigningBytes() []byte {
	var b strings.Builder
	fmt.Fprintf(&b, "cert|%d|%s|%x|%d|%d|%s|",
		c.Serial, c.Subject, c.SubjectKey,
		c.NotBefore.UnixNano(), c.NotAfter.UnixNano(), c.Issuer)
	keys := make([]string, 0, len(c.Claims))
	for k := range c.Claims {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&b, "%q=%q;", k, c.Claims[k])
	}
	return []byte(b.String())
}

// Encode serializes the certificate to JSON.
func (c *Certificate) Encode() ([]byte, error) { return json.Marshal(c) }

// DecodeCertificate parses a JSON-encoded certificate.
func DecodeCertificate(data []byte) (*Certificate, error) {
	var c Certificate
	if err := json.Unmarshal(data, &c); err != nil {
		return nil, fmt.Errorf("cryptoutil: decode certificate: %w", err)
	}
	return &c, nil
}

// Certificate verification errors, matchable with errors.Is.
var (
	ErrCertExpired      = errors.New("certificate expired")
	ErrCertNotYetValid  = errors.New("certificate not yet valid")
	ErrCertBadSignature = errors.New("certificate signature invalid")
	ErrCertWrongIssuer  = errors.New("certificate issuer mismatch")
	ErrCertSubjectKey   = errors.New("certificate subject key does not match subject address")
)

// Verify checks that the certificate (i) names the expected issuer,
// (ii) has a subject key that hashes to the subject address, (iii) carries
// a valid issuer signature, and (iv) is within its validity window at now.
func (c *Certificate) Verify(issuerPubBytes []byte, issuerAddr Address, now time.Time) error {
	if c.Issuer != issuerAddr {
		return fmt.Errorf("%w: got %s, want %s", ErrCertWrongIssuer, c.Issuer, issuerAddr)
	}
	subjPub, err := ParsePublicKey(c.SubjectKey)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrCertSubjectKey, err)
	}
	if AddressOf(subjPub) != c.Subject {
		return ErrCertSubjectKey
	}
	issuerPub, err := ParsePublicKey(issuerPubBytes)
	if err != nil {
		return fmt.Errorf("cryptoutil: issuer key: %w", err)
	}
	if !Verify(issuerPub, c.SigningBytes(), c.Signature) {
		return ErrCertBadSignature
	}
	if now.Before(c.NotBefore) {
		return fmt.Errorf("%w: valid from %s", ErrCertNotYetValid, c.NotBefore)
	}
	if now.After(c.NotAfter) {
		return fmt.Errorf("%w: valid until %s", ErrCertExpired, c.NotAfter)
	}
	return nil
}

// Authority is a minimal certificate authority: it issues certificates
// signed with its key pair.
type Authority struct {
	key    *KeyPair
	name   string
	serial uint64
}

// NewAuthority creates an authority with a fresh key pair.
func NewAuthority(name string) (*Authority, error) {
	kp, err := GenerateKey(nil)
	if err != nil {
		return nil, err
	}
	return &Authority{key: kp, name: name}, nil
}

// Name returns the authority's display name.
func (a *Authority) Name() string { return a.name }

// Address returns the authority's signing address.
func (a *Authority) Address() Address { return a.key.Address() }

// PublicBytes returns the authority's public key encoding, which verifiers
// pin out of band.
func (a *Authority) PublicBytes() []byte { return a.key.PublicBytes() }

// Issue signs a certificate for the subject key with the given claims and
// validity window.
func (a *Authority) Issue(subject *KeyPair, claims map[string]string, notBefore, notAfter time.Time) (*Certificate, error) {
	return a.IssueForKey(subject.Address(), subject.PublicBytes(), claims, notBefore, notAfter)
}

// IssueForKey signs a certificate for an externally held key.
func (a *Authority) IssueForKey(subject Address, subjectKey []byte, claims map[string]string, notBefore, notAfter time.Time) (*Certificate, error) {
	if notAfter.Before(notBefore) {
		return nil, fmt.Errorf("cryptoutil: invalid validity window [%s, %s]", notBefore, notAfter)
	}
	a.serial++
	claimsCopy := make(map[string]string, len(claims))
	for k, v := range claims {
		claimsCopy[k] = v
	}
	cert := &Certificate{
		Serial:     a.serial,
		Subject:    subject,
		SubjectKey: subjectKey,
		Claims:     claimsCopy,
		NotBefore:  notBefore,
		NotAfter:   notAfter,
		Issuer:     a.key.Address(),
	}
	sig, err := a.key.Sign(cert.SigningBytes())
	if err != nil {
		return nil, err
	}
	cert.Signature = sig
	return cert, nil
}
