package cryptoutil

import (
	"errors"
	"testing"
	"time"
)

var testEpoch = time.Date(2023, 10, 9, 12, 0, 0, 0, time.UTC)

func issueTestCert(t *testing.T) (*Authority, *KeyPair, *Certificate) {
	t.Helper()
	ca, err := NewAuthority("market")
	if err != nil {
		t.Fatal(err)
	}
	subject := MustGenerateKey()
	cert, err := ca.Issue(subject,
		map[string]string{"feePaid": "https://bob.pod/medical/ds1", "plan": "basic"},
		testEpoch, testEpoch.Add(24*time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	return ca, subject, cert
}

func TestCertificateIssueVerify(t *testing.T) {
	ca, subject, cert := issueTestCert(t)
	if cert.Subject != subject.Address() {
		t.Fatalf("subject = %s, want %s", cert.Subject, subject.Address())
	}
	now := testEpoch.Add(time.Hour)
	if err := cert.Verify(ca.PublicBytes(), ca.Address(), now); err != nil {
		t.Fatalf("Verify: %v", err)
	}
}

func TestCertificateValidityWindow(t *testing.T) {
	ca, _, cert := issueTestCert(t)
	if err := cert.Verify(ca.PublicBytes(), ca.Address(), testEpoch.Add(-time.Minute)); !errors.Is(err, ErrCertNotYetValid) {
		t.Fatalf("before window: err = %v, want ErrCertNotYetValid", err)
	}
	if err := cert.Verify(ca.PublicBytes(), ca.Address(), testEpoch.Add(25*time.Hour)); !errors.Is(err, ErrCertExpired) {
		t.Fatalf("after window: err = %v, want ErrCertExpired", err)
	}
}

func TestCertificateTamperDetection(t *testing.T) {
	ca, _, cert := issueTestCert(t)
	now := testEpoch.Add(time.Hour)

	t.Run("claims", func(t *testing.T) {
		tampered := *cert
		tampered.Claims = map[string]string{"feePaid": "https://bob.pod/medical/OTHER"}
		if err := tampered.Verify(ca.PublicBytes(), ca.Address(), now); !errors.Is(err, ErrCertBadSignature) {
			t.Fatalf("err = %v, want ErrCertBadSignature", err)
		}
	})
	t.Run("subject swap", func(t *testing.T) {
		mallory := MustGenerateKey()
		tampered := *cert
		tampered.Subject = mallory.Address()
		tampered.SubjectKey = mallory.PublicBytes()
		if err := tampered.Verify(ca.PublicBytes(), ca.Address(), now); !errors.Is(err, ErrCertBadSignature) {
			t.Fatalf("err = %v, want ErrCertBadSignature", err)
		}
	})
	t.Run("subject key mismatch", func(t *testing.T) {
		mallory := MustGenerateKey()
		tampered := *cert
		tampered.SubjectKey = mallory.PublicBytes()
		if err := tampered.Verify(ca.PublicBytes(), ca.Address(), now); !errors.Is(err, ErrCertSubjectKey) {
			t.Fatalf("err = %v, want ErrCertSubjectKey", err)
		}
	})
	t.Run("wrong issuer", func(t *testing.T) {
		other, err := NewAuthority("impostor")
		if err != nil {
			t.Fatal(err)
		}
		if err := cert.Verify(other.PublicBytes(), other.Address(), now); !errors.Is(err, ErrCertWrongIssuer) {
			t.Fatalf("err = %v, want ErrCertWrongIssuer", err)
		}
	})
	t.Run("forged signature", func(t *testing.T) {
		mallory := MustGenerateKey()
		tampered := *cert
		sig, err := mallory.Sign(tampered.SigningBytes())
		if err != nil {
			t.Fatal(err)
		}
		tampered.Signature = sig
		if err := tampered.Verify(ca.PublicBytes(), ca.Address(), now); !errors.Is(err, ErrCertBadSignature) {
			t.Fatalf("err = %v, want ErrCertBadSignature", err)
		}
	})
}

func TestCertificateEncodeDecode(t *testing.T) {
	ca, _, cert := issueTestCert(t)
	data, err := cert.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeCertificate(data)
	if err != nil {
		t.Fatal(err)
	}
	if err := back.Verify(ca.PublicBytes(), ca.Address(), testEpoch.Add(time.Hour)); err != nil {
		t.Fatalf("decoded certificate failed verification: %v", err)
	}
	if back.Claims["feePaid"] != cert.Claims["feePaid"] {
		t.Fatal("claims lost in round trip")
	}
	if _, err := DecodeCertificate([]byte("{not json")); err == nil {
		t.Fatal("DecodeCertificate accepted garbage")
	}
}

func TestAuthoritySerialsIncrease(t *testing.T) {
	ca, subject, first := issueTestCert(t)
	second, err := ca.Issue(subject, nil, testEpoch, testEpoch.Add(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if second.Serial <= first.Serial {
		t.Fatalf("serials not increasing: %d then %d", first.Serial, second.Serial)
	}
}

func TestAuthorityRejectsInvertedWindow(t *testing.T) {
	ca, err := NewAuthority("market")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ca.Issue(MustGenerateKey(), nil, testEpoch, testEpoch.Add(-time.Hour)); err == nil {
		t.Fatal("Issue accepted an inverted validity window")
	}
}

func TestSigningBytesClaimOrderIndependence(t *testing.T) {
	k := MustGenerateKey()
	c1 := &Certificate{Serial: 1, Subject: k.Address(), SubjectKey: k.PublicBytes(),
		Claims: map[string]string{"a": "1", "b": "2", "c": "3"}}
	c2 := &Certificate{Serial: 1, Subject: k.Address(), SubjectKey: k.PublicBytes(),
		Claims: map[string]string{"c": "3", "b": "2", "a": "1"}}
	if string(c1.SigningBytes()) != string(c2.SigningBytes()) {
		t.Fatal("SigningBytes depends on map iteration order")
	}
}

func TestAuthorityIssueCopiesClaims(t *testing.T) {
	ca, err := NewAuthority("market")
	if err != nil {
		t.Fatal(err)
	}
	claims := map[string]string{"k": "v"}
	cert, err := ca.Issue(MustGenerateKey(), claims, testEpoch, testEpoch.Add(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	claims["k"] = "mutated"
	if cert.Claims["k"] != "v" {
		t.Fatal("Issue did not copy the claims map")
	}
}
