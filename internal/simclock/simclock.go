// Package simclock provides a clock abstraction so that the architecture
// can run against real time (examples, servers) or simulated time (tests
// and experiments that span days of policy retention in microseconds).
package simclock

import (
	"sort"
	"sync"
	"time"
)

// Clock supplies the current time and timer scheduling.
type Clock interface {
	// Now returns the current instant.
	Now() time.Time
	// AfterFunc schedules f to run once d has elapsed and returns a
	// cancellation function. f runs on its own goroutine for the real
	// clock and synchronously during Advance for the simulated clock.
	AfterFunc(d time.Duration, f func()) (cancel func())
}

// Real is a Clock backed by the system wall clock.
type Real struct{}

var _ Clock = Real{}

// Now implements Clock.
func (Real) Now() time.Time { return time.Now() }

// AfterFunc implements Clock using time.AfterFunc.
func (Real) AfterFunc(d time.Duration, f func()) func() {
	t := time.AfterFunc(d, f)
	return func() { t.Stop() }
}

// Sim is a deterministic simulated clock. Time only moves when Advance or
// Set is called; timers fire synchronously, in deadline order, during the
// advance. Sim is safe for concurrent use.
type Sim struct {
	mu     sync.Mutex
	now    time.Time
	nextID int
	timers map[int]*simTimer
}

type simTimer struct {
	id       int
	deadline time.Time
	f        func()
}

var _ Clock = (*Sim)(nil)

// NewSim returns a simulated clock starting at the given instant.
func NewSim(start time.Time) *Sim {
	return &Sim{now: start, timers: make(map[int]*simTimer)}
}

// Now implements Clock.
func (s *Sim) Now() time.Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.now
}

// AfterFunc implements Clock. Non-positive durations fire on the next
// Advance (or immediately on Advance(0)).
func (s *Sim) AfterFunc(d time.Duration, f func()) func() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextID++
	id := s.nextID
	s.timers[id] = &simTimer{id: id, deadline: s.now.Add(d), f: f}
	return func() {
		s.mu.Lock()
		defer s.mu.Unlock()
		delete(s.timers, id)
	}
}

// Advance moves the clock forward by d, firing due timers in deadline
// order (ties broken by registration order). Timers registered by fired
// callbacks also fire if they fall due within the same advance.
func (s *Sim) Advance(d time.Duration) {
	s.mu.Lock()
	target := s.now.Add(d)
	s.mu.Unlock()
	s.Set(target)
}

// Set moves the clock to the given instant (which must not be earlier than
// the current instant; earlier targets are ignored), firing due timers as
// in Advance.
func (s *Sim) Set(target time.Time) {
	for {
		s.mu.Lock()
		if target.Before(s.now) {
			s.mu.Unlock()
			return
		}
		// Find the earliest due timer at or before target.
		var due []*simTimer
		for _, t := range s.timers {
			if !t.deadline.After(target) {
				due = append(due, t)
			}
		}
		if len(due) == 0 {
			s.now = target
			s.mu.Unlock()
			return
		}
		sort.Slice(due, func(i, j int) bool {
			if !due[i].deadline.Equal(due[j].deadline) {
				return due[i].deadline.Before(due[j].deadline)
			}
			return due[i].id < due[j].id
		})
		next := due[0]
		delete(s.timers, next.id)
		if next.deadline.After(s.now) {
			s.now = next.deadline
		}
		s.mu.Unlock()
		// Fire outside the lock so callbacks may register new timers.
		next.f()
	}
}
