package simclock

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

var start = time.Date(2023, 10, 9, 0, 0, 0, 0, time.UTC)

func TestSimNowAndAdvance(t *testing.T) {
	c := NewSim(start)
	if !c.Now().Equal(start) {
		t.Fatalf("Now = %s, want %s", c.Now(), start)
	}
	c.Advance(90 * time.Minute)
	if want := start.Add(90 * time.Minute); !c.Now().Equal(want) {
		t.Fatalf("Now = %s, want %s", c.Now(), want)
	}
}

func TestSimTimerFiresOnAdvance(t *testing.T) {
	c := NewSim(start)
	var fired atomic.Int32
	c.AfterFunc(time.Hour, func() { fired.Add(1) })
	c.Advance(59 * time.Minute)
	if fired.Load() != 0 {
		t.Fatal("timer fired early")
	}
	c.Advance(2 * time.Minute)
	if fired.Load() != 1 {
		t.Fatal("timer did not fire")
	}
	c.Advance(10 * time.Hour)
	if fired.Load() != 1 {
		t.Fatal("timer fired more than once")
	}
}

func TestSimTimerOrder(t *testing.T) {
	c := NewSim(start)
	var mu sync.Mutex
	var order []int
	add := func(n int) {
		mu.Lock()
		defer mu.Unlock()
		order = append(order, n)
	}
	c.AfterFunc(3*time.Hour, func() { add(3) })
	c.AfterFunc(1*time.Hour, func() { add(1) })
	c.AfterFunc(2*time.Hour, func() { add(2) })
	c.Advance(5 * time.Hour)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("fire order = %v, want [1 2 3]", order)
	}
}

func TestSimTimerClockAtDeadlineWhenFiring(t *testing.T) {
	c := NewSim(start)
	var seen time.Time
	c.AfterFunc(time.Hour, func() { seen = c.Now() })
	c.Advance(10 * time.Hour)
	if !seen.Equal(start.Add(time.Hour)) {
		t.Fatalf("callback saw %s, want %s", seen, start.Add(time.Hour))
	}
}

func TestSimCancel(t *testing.T) {
	c := NewSim(start)
	var fired atomic.Int32
	cancel := c.AfterFunc(time.Hour, func() { fired.Add(1) })
	cancel()
	c.Advance(2 * time.Hour)
	if fired.Load() != 0 {
		t.Fatal("cancelled timer fired")
	}
	// Cancelling twice is harmless.
	cancel()
}

func TestSimCascadingTimers(t *testing.T) {
	c := NewSim(start)
	var fired atomic.Int32
	c.AfterFunc(time.Hour, func() {
		c.AfterFunc(time.Hour, func() { fired.Add(1) })
	})
	c.Advance(3 * time.Hour)
	if fired.Load() != 1 {
		t.Fatal("timer registered during advance did not fire within the same advance")
	}
}

func TestSimSetIgnoresPast(t *testing.T) {
	c := NewSim(start)
	c.Advance(time.Hour)
	c.Set(start) // earlier; must be ignored
	if !c.Now().Equal(start.Add(time.Hour)) {
		t.Fatal("Set moved the clock backwards")
	}
}

func TestSimConcurrentAdvanceAndRegister(t *testing.T) {
	c := NewSim(start)
	var fired atomic.Int32
	var wg sync.WaitGroup
	for range 4 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for range 50 {
				c.AfterFunc(time.Minute, func() { fired.Add(1) })
			}
		}()
	}
	wg.Wait()
	c.Advance(time.Hour)
	if fired.Load() != 200 {
		t.Fatalf("fired = %d, want 200", fired.Load())
	}
}

func TestRealClock(t *testing.T) {
	var c Clock = Real{}
	before := time.Now()
	now := c.Now()
	if now.Before(before.Add(-time.Second)) {
		t.Fatal("Real.Now is wildly off")
	}
	done := make(chan struct{})
	cancel := c.AfterFunc(time.Millisecond, func() { close(done) })
	defer cancel()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Real.AfterFunc never fired")
	}
}
