// Revocation demonstrates the Fig. 2(5) policy modification process in
// both directions the paper describes: tightening retention (holders
// reschedule or delete immediately) and narrowing purposes (holders with
// disallowed purposes lose use while allowed ones are untouched).
//
//	go run ./examples/revocation
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/policy"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ctx := context.Background()
	d, err := core.NewDeployment(core.Config{})
	if err != nil {
		return err
	}
	defer d.Close()

	owner, err := d.NewOwner("owner")
	if err != nil {
		return err
	}
	if err := owner.InitializePod(ctx, nil); err != nil {
		return err
	}
	if err := owner.AddResource("/data/genomics.vcf", "text/plain", []byte("##fileformat=VCFv4.3\n")); err != nil {
		return err
	}
	pol := owner.NewPolicy("/data/genomics.vcf")
	pol.AllowedPurposes = []policy.Purpose{policy.PurposeMedicalResearch, policy.PurposeAcademic}
	pol.MaxRetention = 60 * 24 * time.Hour
	iri, err := owner.Publish(ctx, "/data/genomics.vcf", "genomic variants", pol)
	if err != nil {
		return err
	}
	fmt.Println("v1:", pol.Summary())

	// Two consumers with different declared purposes.
	clinic, err := d.NewConsumer("clinic", policy.PurposeMedicalResearch)
	if err != nil {
		return err
	}
	university, err := d.NewConsumer("university", policy.PurposeAcademic)
	if err != nil {
		return err
	}
	for _, pair := range []struct {
		c *core.Consumer
		p policy.Purpose
	}{{clinic, policy.PurposeMedicalResearch}, {university, policy.PurposeAcademic}} {
		if err := owner.Grant(ctx, pair.c, "/data/genomics.vcf", pair.p); err != nil {
			return err
		}
		if err := pair.c.Access(ctx, iri); err != nil {
			return err
		}
	}
	fmt.Println("clinic (medical-research) and university (academic) hold copies")

	// v2 after 10 days: retention shortened to 14 days → both holders
	// reschedule their deletion timers.
	d.Clock.Advance(10 * 24 * time.Hour)
	v2 := owner.NewPolicy("/data/genomics.vcf")
	v2.Version = 2
	v2.AllowedPurposes = pol.AllowedPurposes
	v2.MaxRetention = 14 * 24 * time.Hour
	if err := owner.ModifyPolicy(ctx, "/data/genomics.vcf", v2); err != nil {
		return err
	}
	for _, c := range []*core.Consumer{clinic, university} {
		if err := c.WaitPolicyVersion(iri, 2, 5*time.Second); err != nil {
			return err
		}
	}
	fmt.Println("v2: retention shortened to 14 days — holders rescheduled deletion")

	// v3 immediately after: purposes narrowed to academic → the clinic's
	// use is revoked, the university is unaffected.
	v3 := owner.NewPolicy("/data/genomics.vcf")
	v3.Version = 3
	v3.AllowedPurposes = []policy.Purpose{policy.PurposeAcademic}
	v3.MaxRetention = 14 * 24 * time.Hour
	if err := owner.ModifyPolicy(ctx, "/data/genomics.vcf", v3); err != nil {
		return err
	}
	for _, c := range []*core.Consumer{clinic, university} {
		if err := c.WaitPolicyVersion(iri, 3, 5*time.Second); err != nil {
			return err
		}
	}
	if _, err := clinic.Use(iri, policy.ActionUse); err != nil {
		fmt.Println("v3: clinic use ->", err)
	}
	if _, err := university.Use(iri, policy.ActionUse); err != nil {
		return fmt.Errorf("university should be unaffected: %w", err)
	}
	fmt.Println("v3: university continues, clinic revoked — matches the paper's scenario")

	// Day 14 after retrieval: the retention obligation fires on both
	// devices regardless of revocation state.
	d.Clock.Advance(4*24*time.Hour + time.Minute)
	fmt.Printf("day 14: clinic holds=%t university holds=%t (both deleted)\n",
		clinic.App.Holds(iri), university.App.Holds(iri))
	return nil
}
