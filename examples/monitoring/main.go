// Monitoring demonstrates the Fig. 2(6) policy monitoring process with
// failure injection: three consumer devices hold copies of a dataset, one
// turns rogue (stops executing deletion obligations) and one goes
// offline. The DE App's monitoring detects both: a retention violation
// backed by signed evidence, and an unresponsive-device violation.
//
//	go run ./examples/monitoring
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/distexchange"
	"repro/internal/policy"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ctx := context.Background()
	d, err := core.NewDeployment(core.Config{MonitoringGrace: 500 * time.Millisecond})
	if err != nil {
		return err
	}
	defer d.Close()

	owner, err := d.NewOwner("owner")
	if err != nil {
		return err
	}
	if err := owner.InitializePod(ctx, nil); err != nil {
		return err
	}
	if err := owner.AddResource("/data/survey.csv", "text/csv", []byte("q,a\n1,yes\n")); err != nil {
		return err
	}
	pol := owner.NewPolicy("/data/survey.csv")
	pol.MaxRetention = 14 * 24 * time.Hour
	pol.NotifyOnUse = true
	iri, err := owner.Publish(ctx, "/data/survey.csv", "survey responses", pol)
	if err != nil {
		return err
	}
	fmt.Println("published:", pol.Summary())

	var consumers []*core.Consumer
	for i := range 3 {
		c, err := d.NewConsumer(fmt.Sprintf("device%d", i), policy.PurposeWebAnalytics)
		if err != nil {
			return err
		}
		if err := owner.Grant(ctx, c, "/data/survey.csv", policy.PurposeWebAnalytics); err != nil {
			return err
		}
		if err := c.Access(ctx, iri); err != nil {
			return err
		}
		if _, err := c.Use(iri, policy.ActionUse); err != nil {
			return err
		}
		consumers = append(consumers, c)
	}
	fmt.Println("3 devices hold policy-controlled copies")

	// Round 1: everyone compliant.
	evidence, violations, err := owner.Monitor(ctx, "/data/survey.csv")
	if err != nil {
		return err
	}
	fmt.Printf("round 1: %d evidence reports, %d violations\n", len(evidence), len(violations))

	// Failure injection: device 1 turns rogue, device 2 goes offline.
	consumers[1].App.SetRogue(true)
	d.PullIn().UnregisterSource(consumers[2].Device.Address())
	fmt.Println("injected: device1 stops deleting, device2 goes offline")

	// 15 days later the retention deadline has passed. Honest device 0
	// deleted its copy; rogue device 1 still holds it.
	d.Clock.Advance(15 * 24 * time.Hour)
	fmt.Printf("after 15 days: device0 holds=%t device1 holds=%t\n",
		consumers[0].App.Holds(iri), consumers[1].App.Holds(iri))

	evidence, violations, err = owner.Monitor(ctx, "/data/survey.csv")
	if err != nil {
		return err
	}
	fmt.Printf("round 2: %d evidence reports, %d violations\n", len(evidence), len(violations))
	for _, v := range violations {
		fmt.Printf("  violation: kind=%s device=%s round=%d\n", v.Kind, v.Device.Short(), v.Round)
	}

	// The owner revokes the rogue device's grant.
	for _, v := range violations {
		if v.Kind == distexchange.ViolationRetention {
			if _, err := owner.Manager.DE().RevokeGrant(ctx, distexchange.RevokeGrantArgs{
				ResourceIRI: iri, Device: v.Device,
			}); err != nil {
				return err
			}
			fmt.Printf("  grant revoked for %s\n", v.Device.Short())
		}
	}
	return nil
}
