package main

import "testing"

// TestRun executes the example's full flow end to end; the example
// binaries are part of the documented surface and must keep working.
func TestRun(t *testing.T) {
	if err := run(); err != nil {
		t.Fatalf("quickstart example failed: %v", err)
	}
}
