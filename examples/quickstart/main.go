// Quickstart: the smallest end-to-end run of the usage-control
// architecture — one data owner, one consumer, one usage policy, and the
// TEE enforcing the policy's retention obligation.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/policy"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ctx := context.Background()

	// Boot the architecture: blockchain + DE App + market + oracles.
	d, err := core.NewDeployment(core.Config{})
	if err != nil {
		return err
	}
	defer d.Close()

	// Alice sets up a pod and publishes a dataset with a 7-day retention
	// policy (Fig. 2, processes 1 and 2).
	alice, err := d.NewOwner("alice")
	if err != nil {
		return err
	}
	if err := alice.InitializePod(ctx, nil); err != nil {
		return err
	}
	if err := alice.AddResource("/data/readings.csv", "text/csv", []byte("t,v\n1,3.14\n2,2.72\n")); err != nil {
		return err
	}
	pol := alice.NewPolicy("/data/readings.csv")
	pol.MaxRetention = 7 * 24 * time.Hour
	iri, err := alice.Publish(ctx, "/data/readings.csv", "sensor readings", pol)
	if err != nil {
		return err
	}
	fmt.Println("published:", iri)
	fmt.Println("policy:   ", pol.Summary())

	// Bob (a consumer with an attested TEE device) indexes and accesses
	// the resource (processes 3 and 4).
	bob, err := d.NewConsumer("bob", policy.PurposeWebAnalytics)
	if err != nil {
		return err
	}
	if err := alice.Grant(ctx, bob, "/data/readings.csv", policy.PurposeWebAnalytics); err != nil {
		return err
	}
	if err := bob.Access(ctx, iri); err != nil {
		return err
	}
	data, err := bob.Use(iri, policy.ActionUse)
	if err != nil {
		return err
	}
	fmt.Printf("bob uses the copy inside his TEE: %d bytes\n", len(data))

	// Six days later the copy is still usable...
	d.Clock.Advance(6 * 24 * time.Hour)
	if _, err := bob.Use(iri, policy.ActionUse); err != nil {
		return err
	}
	fmt.Println("day 6: copy still usable")

	// ...but after the deadline the TEE has erased it.
	d.Clock.Advance(2 * 24 * time.Hour)
	if _, err := bob.Use(iri, policy.ActionUse); err != nil {
		fmt.Println("day 8:", err)
	}
	if !bob.App.Holds(iri) {
		fmt.Println("day 8: the TEE deleted the copy — retention enforced")
	}
	return nil
}
