// Datamarket replays the paper's Section II motivating scenario end to
// end: Alice and Bob trade datasets through the decentralized data
// market, usage policies travel with the data, both later tighten their
// policies, and the TEEs execute the resulting obligations.
//
//	go run ./examples/datamarket
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/policy"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func step(format string, args ...any) { fmt.Printf("-- "+format+"\n", args...) }

func run() error {
	ctx := context.Background()
	d, err := core.NewDeployment(core.Config{Validators: 3})
	if err != nil {
		return err
	}
	defer d.Close()

	// "Alice and Bob sign up for a new decentralized data market service"
	alice, err := d.NewOwner("alice")
	if err != nil {
		return err
	}
	bob, err := d.NewOwner("bob")
	if err != nil {
		return err
	}
	if err := alice.InitializePod(ctx, nil); err != nil {
		return err
	}
	if err := bob.InitializePod(ctx, nil); err != nil {
		return err
	}
	step("pods initialized on a 3-validator chain (Fig. 2-1)")

	// "Bob's dataset contains medical data to be used only for medical
	// purposes."
	if err := bob.AddResource("/medical/ds1.ttl", "text/turtle",
		[]byte("@prefix ex: <http://e/> .\nex:patient42 ex:hasCondition ex:c1 .")); err != nil {
		return err
	}
	medicalPol := bob.NewPolicy("/medical/ds1.ttl")
	medicalPol.AllowedPurposes = []policy.Purpose{policy.PurposeMedicalResearch}
	medicalIRI, err := bob.Publish(ctx, "/medical/ds1.ttl", "medical dataset", medicalPol)
	if err != nil {
		return err
	}

	// "Alice's dataset contains internet-browsing datasets, which must be
	// deleted one month after their storage."
	if err := alice.AddResource("/web/browsing.csv", "text/csv",
		[]byte("url,ts\nexample.org,1696800000\n")); err != nil {
		return err
	}
	browsingPol := alice.NewPolicy("/web/browsing.csv")
	browsingPol.MaxRetention = 30 * 24 * time.Hour
	browsingIRI, err := alice.Publish(ctx, "/web/browsing.csv", "internet browsing dataset", browsingPol)
	if err != nil {
		return err
	}
	step("resources published with usage policies (Fig. 2-2)")
	step("  %s", medicalPol.Summary())
	step("  %s", browsingPol.Summary())

	// "Alice is a researcher in the healthcare domain." / "Bob, a web
	// data analyst."
	aliceResearcher, err := d.NewConsumer("alice-researcher", policy.PurposeMedicalResearch)
	if err != nil {
		return err
	}
	bobAnalyst, err := d.NewConsumer("bob-analyst", policy.PurposeWebAnalytics)
	if err != nil {
		return err
	}
	if err := bob.Grant(ctx, aliceResearcher, "/medical/ds1.ttl", policy.PurposeMedicalResearch); err != nil {
		return err
	}
	if err := alice.Grant(ctx, bobAnalyst, "/web/browsing.csv", policy.PurposeWebAnalytics); err != nil {
		return err
	}

	// Resource indexing + access with market-fee certificates
	// (Fig. 2-3/2-4).
	if err := aliceResearcher.Access(ctx, medicalIRI); err != nil {
		return err
	}
	if err := bobAnalyst.Access(ctx, browsingIRI); err != nil {
		return err
	}
	step("cross-access complete: fee paid, certificate checked, copies in TEEs (Fig. 2-3/2-4)")

	if _, err := aliceResearcher.Use(medicalIRI, policy.ActionUse); err != nil {
		return err
	}
	if _, err := bobAnalyst.Use(browsingIRI, policy.ActionUse); err != nil {
		return err
	}
	step("both consumers use their local copies under policy control")

	// "Alice asks the market service to check that the usage policy ... is
	// being adhered to." (Fig. 2-6)
	evidence, violations, err := alice.Monitor(ctx, "/web/browsing.csv")
	if err != nil {
		return err
	}
	step("monitoring round: %d evidence reports, %d violations (Fig. 2-6)", len(evidence), len(violations))

	// "After two days, Alice changes the maximum storage time ... to one
	// week. In the meantime, Bob modifies the allowed purpose ... to
	// academic pursuits." (Fig. 2-5)
	d.Clock.Advance(48 * time.Hour)
	aliceV2 := alice.NewPolicy("/web/browsing.csv")
	aliceV2.Version = 2
	aliceV2.MaxRetention = 7 * 24 * time.Hour
	if err := alice.ModifyPolicy(ctx, "/web/browsing.csv", aliceV2); err != nil {
		return err
	}
	bobV2 := bob.NewPolicy("/medical/ds1.ttl")
	bobV2.Version = 2
	bobV2.AllowedPurposes = []policy.Purpose{policy.PurposeAcademic}
	if err := bob.ModifyPolicy(ctx, "/medical/ds1.ttl", bobV2); err != nil {
		return err
	}
	if err := bobAnalyst.WaitPolicyVersion(browsingIRI, 2, 5*time.Second); err != nil {
		return err
	}
	if err := aliceResearcher.WaitPolicyVersion(medicalIRI, 2, 5*time.Second); err != nil {
		return err
	}
	step("policy updates propagated through the push-out oracle (Fig. 2-5)")

	// "Alice's data are erased from Bob's device after the new expiry
	// time lapses."
	d.Clock.Advance(5*24*time.Hour + time.Minute)
	if bobAnalyst.App.Holds(browsingIRI) {
		return fmt.Errorf("browsing data survived the shortened retention")
	}
	step("day 7: Alice's data erased from Bob's device")

	// Alice's medical-research purpose is no longer allowed under Bob's
	// academic-only policy, so her use is revoked.
	if _, err := aliceResearcher.Use(medicalIRI, policy.ActionUse); err != nil {
		step("Alice's researcher app: %v", err)
	}

	fmt.Println()
	fmt.Println(core.ChainStats(d))
	return nil
}
