// Settlement demonstrates the paper's §V-4 economic mechanism (future
// work): the data market redistributes access-fee revenue to data owners
// proportionally to the accesses their resources received, keeping a
// margin for itself.
//
//	go run ./examples/settlement
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/policy"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ctx := context.Background()
	d, err := core.NewDeployment(core.Config{})
	if err != nil {
		return err
	}
	defer d.Close()

	// Three owners publish one dataset each.
	type seller struct {
		owner *core.Owner
		iri   string
	}
	var sellers []seller
	for i, name := range []string{"alice", "bob", "carol"} {
		o, err := d.NewOwner(name)
		if err != nil {
			return err
		}
		if err := o.InitializePod(ctx, nil); err != nil {
			return err
		}
		path := "/data/set.csv"
		if err := o.AddResource(path, "text/csv", []byte(fmt.Sprintf("dataset %d", i))); err != nil {
			return err
		}
		iri, err := o.Publish(ctx, path, name+"'s dataset", nil)
		if err != nil {
			return err
		}
		sellers = append(sellers, seller{owner: o, iri: iri})
	}

	// Demand is skewed: alice 5 accesses, bob 3, carol 1.
	demand := []int{5, 3, 1}
	idx := 0
	for i, n := range demand {
		for range n {
			c, err := d.NewConsumer(fmt.Sprintf("buyer%d", idx), policy.PurposeAny)
			if err != nil {
				return err
			}
			idx++
			if err := sellers[i].owner.Grant(ctx, c, "/data/set.csv", policy.PurposeAny); err != nil {
				return err
			}
			if err := c.Access(ctx, sellers[i].iri); err != nil {
				return err
			}
		}
	}
	fmt.Printf("period complete: %d paid accesses, %d fee units of revenue\n",
		d.Market.Payments(), d.Market.Revenue())

	// Settle with a 10% market margin.
	payouts, err := d.Market.Settle(10)
	if err != nil {
		return err
	}
	fmt.Println("settlement (10% market margin):")
	for _, p := range payouts {
		fmt.Printf("  %-42s accesses=%d payout=%d\n", p.OwnerWebID, p.Accesses, p.Amount)
	}
	fmt.Printf("market retains %d fee units (margin + rounding)\n", d.Market.Revenue())
	return nil
}
