// Command benchdiff compares two ucbench -json snapshots and fails when
// any gated table regresses beyond a percentage threshold. CI runs it
// over the committed BENCH_<n>.json artifacts so a PR that slows the
// commit or durability path by more than the budget fails visibly
// instead of drifting.
//
// Usage:
//
//	benchdiff -old BENCH_6.json -new BENCH_7.json [-max-pct 15] [-tables commitpath,durability]
//
// Rows are matched by (exp, case). A row of a gated table that exists
// in the old snapshot but not the new one fails the gate too: silently
// dropping a benchmarked case is how regressions hide. Ungated tables
// are reported for context but never fail. Exit status: 0 pass, 1
// regression, 2 usage/IO error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
)

type row struct {
	Exp      string  `json:"exp"`
	Case     string  `json:"case"`
	NsOp     float64 `json:"ns_op"`
	AllocsOp float64 `json:"allocs_op"`
	BytesOp  float64 `json:"bytes_op"`
}

func main() {
	os.Exit(run(os.Stdout, os.Stderr, os.Args[1:]))
}

func run(stdout, stderr io.Writer, args []string) int {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	fs.SetOutput(stderr)
	oldPath := fs.String("old", "", "baseline ucbench -json snapshot")
	newPath := fs.String("new", "", "candidate ucbench -json snapshot")
	maxPct := fs.Float64("max-pct", 15, "max allowed ns/op regression, percent")
	tables := fs.String("tables", "commitpath,durability", "comma-separated gated tables")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *oldPath == "" || *newPath == "" {
		fmt.Fprintln(stderr, "benchdiff: -old and -new are required")
		return 2
	}
	oldRows, err := load(*oldPath)
	if err != nil {
		fmt.Fprintln(stderr, "benchdiff:", err)
		return 2
	}
	newRows, err := load(*newPath)
	if err != nil {
		fmt.Fprintln(stderr, "benchdiff:", err)
		return 2
	}
	gated := make(map[string]bool)
	for _, t := range strings.Split(*tables, ",") {
		if t = strings.TrimSpace(t); t != "" {
			gated[t] = true
		}
	}

	type key struct{ exp, cse string }
	newBy := make(map[key]row, len(newRows))
	for _, r := range newRows {
		newBy[key{r.Exp, r.Case}] = r
	}

	var keys []key
	for _, r := range oldRows {
		keys = append(keys, key{r.Exp, r.Case})
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].exp != keys[j].exp {
			return keys[i].exp < keys[j].exp
		}
		return keys[i].cse < keys[j].cse
	})
	oldBy := make(map[key]row, len(oldRows))
	for _, r := range oldRows {
		oldBy[key{r.Exp, r.Case}] = r
	}

	// improvement tracks the biggest ns/op wins across ALL tables (gated
	// or not) so a perf PR's headline numbers surface in the CI log
	// without anyone re-running the sweep locally.
	type improvement struct {
		exp, cse string
		oldNs    float64
		newNs    float64
		pct      float64
	}
	var improvements []improvement

	failures := 0
	for _, k := range keys {
		o := oldBy[k]
		n, ok := newBy[k]
		if ok && o.NsOp > 0 && n.NsOp < o.NsOp {
			improvements = append(improvements, improvement{
				exp: k.exp, cse: k.cse, oldNs: o.NsOp, newNs: n.NsOp,
				pct: (n.NsOp - o.NsOp) / o.NsOp * 100,
			})
		}
		if !gated[k.exp] {
			continue
		}
		if !ok {
			fmt.Fprintf(stdout, "FAIL %s/%s: present in %s, missing from %s\n", k.exp, k.cse, *oldPath, *newPath)
			failures++
			continue
		}
		if o.NsOp <= 0 {
			continue
		}
		pct := (n.NsOp - o.NsOp) / o.NsOp * 100
		status := "ok  "
		if pct > *maxPct {
			status = "FAIL"
			failures++
		}
		fmt.Fprintf(stdout, "%s %s/%s: %.0f -> %.0f ns/op (%+.1f%%, budget %+.1f%%)\n",
			status, k.exp, k.cse, o.NsOp, n.NsOp, pct, *maxPct)
	}
	if len(improvements) > 0 {
		sort.Slice(improvements, func(i, j int) bool { return improvements[i].pct < improvements[j].pct })
		fmt.Fprintln(stdout, "top improvements:")
		for i, imp := range improvements {
			if i >= 3 {
				break
			}
			fmt.Fprintf(stdout, "  %s/%s: %.0f -> %.0f ns/op (%.1f%%)\n",
				imp.exp, imp.cse, imp.oldNs, imp.newNs, imp.pct)
		}
	}
	if failures > 0 {
		fmt.Fprintf(stdout, "benchdiff: %d regression(s) beyond %.1f%%\n", failures, *maxPct)
		return 1
	}
	fmt.Fprintln(stdout, "benchdiff: gated tables within budget")
	return 0
}

func load(path string) ([]row, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rows []row
	if err := json.Unmarshal(data, &rows); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("%s: no benchmark rows", path)
	}
	return rows, nil
}
