package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeSnapshot(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const baseline = `[
  {"exp":"commitpath","case":"1000/64","ns_op":100000,"allocs_op":10,"bytes_op":100},
  {"exp":"durability","case":"wal-always","ns_op":200000,"allocs_op":10,"bytes_op":100},
  {"exp":"e1","case":"1/1/1","ns_op":1000,"allocs_op":1,"bytes_op":1}
]`

func runDiff(t *testing.T, oldJSON, newJSON string, extra ...string) (int, string) {
	t.Helper()
	oldPath := writeSnapshot(t, "old.json", oldJSON)
	newPath := writeSnapshot(t, "new.json", newJSON)
	var stdout, stderr bytes.Buffer
	args := append([]string{"-old", oldPath, "-new", newPath}, extra...)
	code := run(&stdout, &stderr, args)
	return code, stdout.String() + stderr.String()
}

func TestWithinBudgetPasses(t *testing.T) {
	newJSON := strings.ReplaceAll(baseline, "100000", "110000") // +10% < 15%
	code, out := runDiff(t, baseline, newJSON)
	if code != 0 {
		t.Fatalf("exit = %d, want 0\n%s", code, out)
	}
}

func TestRegressionBeyondBudgetFails(t *testing.T) {
	newJSON := strings.ReplaceAll(baseline, "200000", "250000") // +25% > 15%
	code, out := runDiff(t, baseline, newJSON)
	if code != 1 {
		t.Fatalf("exit = %d, want 1\n%s", code, out)
	}
	if !strings.Contains(out, "FAIL durability/wal-always") {
		t.Fatalf("output does not name the regressing row:\n%s", out)
	}
}

func TestUngatedTableNeverFails(t *testing.T) {
	newJSON := strings.ReplaceAll(baseline, `"ns_op":1000,`, `"ns_op":9000,`) // e1 +800%
	code, out := runDiff(t, baseline, newJSON)
	if code != 0 {
		t.Fatalf("exit = %d, want 0 (e1 is not gated)\n%s", code, out)
	}
}

func TestMissingGatedRowFails(t *testing.T) {
	newJSON := `[
	  {"exp":"commitpath","case":"1000/64","ns_op":100000,"allocs_op":10,"bytes_op":100}
	]`
	code, out := runDiff(t, baseline, newJSON)
	if code != 1 {
		t.Fatalf("exit = %d, want 1 for a dropped durability row\n%s", code, out)
	}
	if !strings.Contains(out, "missing from") {
		t.Fatalf("output does not report the dropped row:\n%s", out)
	}
}

func TestTopImprovementsReported(t *testing.T) {
	// e1 improves most (-50%), durability -25%, commitpath -10%: the
	// summary must list all three, biggest win first, ungated included.
	newJSON := strings.ReplaceAll(baseline, `"ns_op":1000,`, `"ns_op":500,`)
	newJSON = strings.ReplaceAll(newJSON, "200000", "150000")
	newJSON = strings.ReplaceAll(newJSON, "100000", "90000")
	code, out := runDiff(t, baseline, newJSON)
	if code != 0 {
		t.Fatalf("exit = %d, want 0\n%s", code, out)
	}
	idx := strings.Index(out, "top improvements:")
	if idx < 0 {
		t.Fatalf("no top-improvements summary:\n%s", out)
	}
	summary := out[idx:]
	e1 := strings.Index(summary, "e1/1/1")
	dur := strings.Index(summary, "durability/wal-always")
	cp := strings.Index(summary, "commitpath/1000/64")
	if e1 < 0 || dur < 0 || cp < 0 {
		t.Fatalf("summary missing rows (e1=%d dur=%d cp=%d):\n%s", e1, dur, cp, summary)
	}
	if !(e1 < dur && dur < cp) {
		t.Fatalf("summary not ordered biggest-win-first:\n%s", summary)
	}
}

func TestTopImprovementsCappedAtThree(t *testing.T) {
	oldJSON := `[
	  {"exp":"e1","case":"a","ns_op":1000},
	  {"exp":"e1","case":"b","ns_op":1000},
	  {"exp":"e1","case":"c","ns_op":1000},
	  {"exp":"e1","case":"d","ns_op":1000}
	]`
	newJSON := `[
	  {"exp":"e1","case":"a","ns_op":900},
	  {"exp":"e1","case":"b","ns_op":800},
	  {"exp":"e1","case":"c","ns_op":700},
	  {"exp":"e1","case":"d","ns_op":600}
	]`
	code, out := runDiff(t, oldJSON, newJSON)
	if code != 0 {
		t.Fatalf("exit = %d, want 0\n%s", code, out)
	}
	if strings.Contains(out, "e1/a") {
		t.Fatalf("fourth-best improvement should be dropped from a top-3 list:\n%s", out)
	}
	for _, want := range []string{"e1/d", "e1/c", "e1/b"} {
		if !strings.Contains(out, want) {
			t.Fatalf("summary missing %s:\n%s", want, out)
		}
	}
}

// TestCommittedSnapshotsPass is the CI gate itself: the committed
// BENCH_9.json must stay within the regression budget of BENCH_8.json
// (whose gated rows were re-measured on the PR 9 bench host — see the
// bench-host note in docs/experiments.md).
func TestCommittedSnapshotsPass(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run(&stdout, &stderr, []string{
		"-old", "../../BENCH_8.json", "-new", "../../BENCH_9.json",
		"-tables", "commitpath,durability,parexec"})
	if code != 0 {
		t.Fatalf("committed snapshots exceed the regression budget (exit %d):\n%s%s",
			code, stdout.String(), stderr.String())
	}
}
