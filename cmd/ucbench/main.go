// Command ucbench regenerates the experiment tables of EXPERIMENTS.md.
//
// Usage:
//
//	ucbench [-exp e1,e5,commitpath|all] [-quick] [-json results.json]
//
// Each experiment boots a fresh in-process deployment of the full
// architecture (blockchain + DE App + pods + TEEs + oracles + market) and
// prints one table. With -json, every printed table row is additionally
// written to the given file as a machine-readable measurement
// ({exp, case, ns_op, allocs_op, bytes_op}), the schema the BENCH_*.json
// perf trajectory tracks across PRs.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"slices"
	"strings"

	"repro/internal/core"
	// Linked for its init: installs core.ScenarioThroughputFn so the
	// scenario-throughput ablation can run.
	_ "repro/internal/scenario"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ucbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("ucbench", flag.ContinueOnError)
	expFlag := fs.String("exp", "all", "comma-separated experiments (e1..e12, scenario, durability, commitpath, ..., ablations) or 'all'")
	quick := fs.Bool("quick", false, "shrink sweep sizes for a fast run")
	jsonPath := fs.String("json", "", "also write machine-readable results ({exp,case,ns_op,allocs_op,bytes_op} per table row) to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}

	h := &core.Harness{Quick: *quick}
	experiments := map[string]func() *core.Table{
		"e1":             h.E1PodInitiation,
		"e2":             h.E2ResourceInitiation,
		"e3":             h.E3ResourceIndexing,
		"e4":             h.E4ResourceAccess,
		"e5":             h.E5PolicyModification,
		"e6":             h.E6PolicyMonitoring,
		"e7":             h.E7LocalVsRemote,
		"e8":             h.E8Security,
		"e9":             h.E9Gas,
		"e10":            h.E10Overhead,
		"e11":            h.E11Remuneration,
		"e12":            h.E12Robustness,
		"blockinterval":  h.AblationBlockInterval,
		"oraclefanout":   h.AblationOracleFanout,
		"batchsubmit":    h.AblationBatchSubmit,
		"parallelverify": h.AblationParallelVerify,
		"hostscaleout":   h.AblationHostScaleOut,
		"authcache":      h.AblationAuthCache,
		"scenario":       h.AblationScenarioThroughput,
		"durability":     h.AblationDurability,
		"commitpath":     h.AblationCommitPath,
		"parexec":        h.AblationParExec,
		"mempool":        h.AblationMempool,
		"obs":            h.AblationObs,
		"ablations":      nil, // expanded below
	}
	order := []string{"e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11", "e12", "scenario", "durability", "commitpath", "parexec", "mempool", "obs", "ablations"}
	ablationNames := []string{"blockinterval", "oraclefanout", "batchsubmit", "parallelverify", "hostscaleout", "authcache", "scenario", "durability", "commitpath", "parexec", "mempool", "obs"}

	// Validate the whole selection up front: an unknown table name is a
	// hard error naming the valid set — never a silent skip that would
	// make a typoed -exp look like a clean (empty) run.
	validNames := func() string {
		names := make([]string, 0, len(order)+len(ablationNames))
		names = append(names, order[:len(order)-1]...)
		for _, name := range ablationNames {
			if !slices.Contains(names, name) {
				names = append(names, name)
			}
		}
		names = append(names, "ablations")
		return strings.Join(names, ", ")
	}
	var selected []string
	if *expFlag == "all" {
		selected = order
	} else {
		var unknown []string
		for _, name := range strings.Split(*expFlag, ",") {
			name = strings.TrimSpace(strings.ToLower(name))
			if name == "" {
				continue
			}
			if _, ok := experiments[name]; !ok {
				unknown = append(unknown, fmt.Sprintf("%q", name))
				continue
			}
			selected = append(selected, name)
		}
		if len(unknown) > 0 {
			return fmt.Errorf("unknown experiment table(s) %s; valid tables: %s, all",
				strings.Join(unknown, ", "), validNames())
		}
	}
	// Expand the "ablations" pseudo-table into its member tables,
	// skipping any the selection already names (so "all" runs each table
	// exactly once — and each exp appears once in the JSON output).
	var resolved []string
	for _, name := range selected {
		if name != "ablations" {
			if !slices.Contains(resolved, name) {
				resolved = append(resolved, name)
			}
			continue
		}
		for _, member := range ablationNames {
			if !slices.Contains(resolved, member) {
				resolved = append(resolved, member)
			}
		}
	}
	if len(resolved) == 0 {
		return fmt.Errorf("no experiments selected; valid tables: %s, all", validNames())
	}

	var benchRows []core.BenchRow
	for _, name := range resolved {
		table := experiments[name]()
		fmt.Println(table)
		if *jsonPath != "" {
			benchRows = append(benchRows, table.BenchRows(name)...)
		}
	}
	if *jsonPath != "" {
		buf, err := json.MarshalIndent(benchRows, "", "  ")
		if err != nil {
			return fmt.Errorf("encode results: %w", err)
		}
		buf = append(buf, '\n')
		if err := os.WriteFile(*jsonPath, buf, 0o644); err != nil {
			return fmt.Errorf("write results: %w", err)
		}
	}
	return nil
}
