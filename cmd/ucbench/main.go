// Command ucbench regenerates the experiment tables of EXPERIMENTS.md.
//
// Usage:
//
//	ucbench [-exp e1,e5,e9|all] [-quick]
//
// Each experiment boots a fresh in-process deployment of the full
// architecture (blockchain + DE App + pods + TEEs + oracles + market) and
// prints one table.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/core"
	// Linked for its init: installs core.ScenarioThroughputFn so the
	// scenario-throughput ablation can run.
	_ "repro/internal/scenario"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ucbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("ucbench", flag.ContinueOnError)
	expFlag := fs.String("exp", "all", "comma-separated experiments (e1..e12, scenario, ablations) or 'all'")
	quick := fs.Bool("quick", false, "shrink sweep sizes for a fast run")
	if err := fs.Parse(args); err != nil {
		return err
	}

	h := &core.Harness{Quick: *quick}
	experiments := map[string]func() *core.Table{
		"e1":         h.E1PodInitiation,
		"e2":         h.E2ResourceInitiation,
		"e3":         h.E3ResourceIndexing,
		"e4":         h.E4ResourceAccess,
		"e5":         h.E5PolicyModification,
		"e6":         h.E6PolicyMonitoring,
		"e7":         h.E7LocalVsRemote,
		"e8":         h.E8Security,
		"e9":         h.E9Gas,
		"e10":        h.E10Overhead,
		"e11":        h.E11Remuneration,
		"e12":        h.E12Robustness,
		"scenario":   h.AblationScenarioThroughput,
		"durability": h.AblationDurability,
		"ablations":  nil, // expanded below
	}
	order := []string{"e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11", "e12", "scenario", "durability", "ablations"}

	// Validate the whole selection up front: an unknown table name is a
	// hard error naming the valid set — never a silent skip that would
	// make a typoed -exp look like a clean (empty) run.
	var selected []string
	if *expFlag == "all" {
		selected = order
	} else {
		var unknown []string
		for _, name := range strings.Split(*expFlag, ",") {
			name = strings.TrimSpace(strings.ToLower(name))
			if name == "" {
				continue
			}
			if _, ok := experiments[name]; !ok {
				unknown = append(unknown, fmt.Sprintf("%q", name))
				continue
			}
			selected = append(selected, name)
		}
		if len(unknown) > 0 {
			return fmt.Errorf("unknown experiment table(s) %s; valid tables: %s, all",
				strings.Join(unknown, ", "), strings.Join(order, ", "))
		}
	}
	if len(selected) == 0 {
		return fmt.Errorf("no experiments selected; valid tables: %s, all", strings.Join(order, ", "))
	}

	for _, name := range selected {
		if name == "ablations" {
			fmt.Println(h.AblationBlockInterval())
			fmt.Println(h.AblationOracleFanout())
			fmt.Println(h.AblationBatchSubmit())
			fmt.Println(h.AblationParallelVerify())
			fmt.Println(h.AblationHostScaleOut())
			fmt.Println(h.AblationAuthCache())
			fmt.Println(h.AblationScenarioThroughput())
			fmt.Println(h.AblationDurability())
			continue
		}
		fmt.Println(experiments[name]())
	}
	return nil
}
