package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
)

func TestRunSelectsExperiments(t *testing.T) {
	// A cheap experiment in quick mode exercises flag parsing, dispatch,
	// and table printing end to end.
	if err := run([]string{"-quick", "-exp", "e8"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsUnknownExperiment(t *testing.T) {
	if err := run([]string{"-exp", "e99"}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunRejectsEmptySelection(t *testing.T) {
	if err := run([]string{"-exp", ","}); err == nil {
		t.Fatal("empty selection accepted")
	}
}

func TestRunRejectsBadFlag(t *testing.T) {
	if err := run([]string{"-no-such-flag"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}

// TestRunListsValidTablesOnUnknown: every unknown table name is
// reported (no silent skipping) alongside the full valid set.
func TestRunListsValidTablesOnUnknown(t *testing.T) {
	err := run([]string{"-exp", "e1,nope,alsole-wrong"})
	if err == nil {
		t.Fatal("unknown tables accepted")
	}
	msg := err.Error()
	for _, want := range []string{`"nope"`, `"alsole-wrong"`, "valid tables:", "durability", "scenario", "e12"} {
		if !strings.Contains(msg, want) {
			t.Fatalf("error %q does not mention %s", msg, want)
		}
	}
}

// TestRunDurabilityTable: the durability ablation is reachable by name.
func TestRunDurabilityTable(t *testing.T) {
	if testing.Short() {
		t.Skip("boots disk-backed nodes")
	}
	if err := run([]string{"-quick", "-exp", "durability"}); err != nil {
		t.Fatal(err)
	}
}

// TestRunJSONOutput: -json writes a parseable measurement file that
// covers every row of every selected table (the BENCH_*.json schema).
func TestRunJSONOutput(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := run([]string{"-quick", "-exp", "e8,commitpath", "-json", path}); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rows []core.BenchRow
	if err := json.Unmarshal(raw, &rows); err != nil {
		t.Fatalf("output does not parse: %v", err)
	}

	// Coverage: one JSON row per table row, for every selected table.
	h := &core.Harness{Quick: true}
	want := map[string]int{
		"e8":         len(h.E8Security().Rows),
		"commitpath": len(h.AblationCommitPath().Rows),
	}
	got := map[string]int{}
	for _, r := range rows {
		if r.Exp == "" || r.Case == "" {
			t.Fatalf("row missing exp/case: %+v", r)
		}
		got[r.Exp]++
	}
	for exp, n := range want {
		if got[exp] != n {
			t.Fatalf("exp %s: %d JSON rows, table has %d", exp, got[exp], n)
		}
	}
	if len(got) != len(want) {
		t.Fatalf("unexpected exps in output: %v", got)
	}
	// The commit-path table reports latencies; they must survive the
	// ns conversion.
	for _, r := range rows {
		if r.Exp == "commitpath" && r.NsOp <= 0 {
			t.Fatalf("commitpath row lost its latency: %+v", r)
		}
	}
}

// TestRunCommitPathTable: the commit-path ablation is reachable by name
// and through the ablations expansion exactly once.
func TestRunCommitPathTable(t *testing.T) {
	if err := run([]string{"-quick", "-exp", "commitpath,ablations,commitpath"}); err != nil {
		t.Fatal(err)
	}
}
