package main

import (
	"strings"
	"testing"
)

func TestRunSelectsExperiments(t *testing.T) {
	// A cheap experiment in quick mode exercises flag parsing, dispatch,
	// and table printing end to end.
	if err := run([]string{"-quick", "-exp", "e8"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsUnknownExperiment(t *testing.T) {
	if err := run([]string{"-exp", "e99"}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunRejectsEmptySelection(t *testing.T) {
	if err := run([]string{"-exp", ","}); err == nil {
		t.Fatal("empty selection accepted")
	}
}

func TestRunRejectsBadFlag(t *testing.T) {
	if err := run([]string{"-no-such-flag"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}

// TestRunListsValidTablesOnUnknown: every unknown table name is
// reported (no silent skipping) alongside the full valid set.
func TestRunListsValidTablesOnUnknown(t *testing.T) {
	err := run([]string{"-exp", "e1,nope,alsole-wrong"})
	if err == nil {
		t.Fatal("unknown tables accepted")
	}
	msg := err.Error()
	for _, want := range []string{`"nope"`, `"alsole-wrong"`, "valid tables:", "durability", "scenario", "e12"} {
		if !strings.Contains(msg, want) {
			t.Fatalf("error %q does not mention %s", msg, want)
		}
	}
}

// TestRunDurabilityTable: the durability ablation is reachable by name.
func TestRunDurabilityTable(t *testing.T) {
	if testing.Short() {
		t.Skip("boots disk-backed nodes")
	}
	if err := run([]string{"-quick", "-exp", "durability"}); err != nil {
		t.Fatal(err)
	}
}
