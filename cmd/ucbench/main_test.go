package main

import "testing"

func TestRunSelectsExperiments(t *testing.T) {
	// A cheap experiment in quick mode exercises flag parsing, dispatch,
	// and table printing end to end.
	if err := run([]string{"-quick", "-exp", "e8"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsUnknownExperiment(t *testing.T) {
	if err := run([]string{"-exp", "e99"}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunRejectsEmptySelection(t *testing.T) {
	if err := run([]string{"-exp", ","}); err == nil {
		t.Fatal("empty selection accepted")
	}
}

func TestRunRejectsBadFlag(t *testing.T) {
	if err := run([]string{"-no-such-flag"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}
