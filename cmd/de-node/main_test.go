package main

import "testing"

func TestRunRejectsBadValidatorCount(t *testing.T) {
	if err := run([]string{"-validators", "0"}); err == nil {
		t.Fatal("zero validators accepted")
	}
}

func TestRunRejectsBadFlag(t *testing.T) {
	if err := run([]string{"-bogus"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}
