package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/chain"
	"repro/internal/core"
	"repro/internal/cryptoutil"
	"repro/internal/distexchange"
	"repro/internal/obs"
	"repro/internal/store"
)

func TestRunRejectsBadValidatorCount(t *testing.T) {
	if err := run([]string{"-validators", "0"}); err == nil {
		t.Fatal("zero validators accepted")
	}
}

func TestRunRejectsBadFlag(t *testing.T) {
	if err := run([]string{"-bogus"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}

// newTestCluster builds the cluster exactly as run() does (in-memory).
func newTestCluster(t *testing.T, validators int) ([]*chain.Node, *chain.Network, cryptoutil.Address) {
	t.Helper()
	nodes, network, deAddr, err := buildCluster(clusterConfig{Validators: validators, Sync: store.SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	return nodes, network, deAddr
}

// TestBuildClusterDurableRestart: a durable cluster rebuilt over the
// same data dir keeps its authority identities and chain: the second
// boot resumes at the first boot's height with the same head.
func TestBuildClusterDurableRestart(t *testing.T) {
	dir := t.TempDir()
	nodes, network, deAddr, err := buildCluster(clusterConfig{Validators: 2, DataDir: dir, Sync: store.SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	sender := cryptoutil.MustGenerateKey()
	args := distexchange.RegisterPodArgs{
		OwnerWebID: "https://restart.example/profile#me",
		Location:   "https://restart.example/",
	}
	tx, err := chain.NewTx(sender, 0, deAddr, "registerPod", args, distexchange.DefaultGasLimit)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := network.SubmitEverywhere(tx); err != nil {
		t.Fatal(err)
	}
	if _, err := network.SealNext(); err != nil {
		t.Fatal(err)
	}
	wantHead := nodes[0].Head().Hash()
	wantAddrs := []cryptoutil.Address{nodes[0].Address(), nodes[1].Address()}
	for _, n := range nodes {
		if err := n.Close(); err != nil {
			t.Fatal(err)
		}
	}

	nodes2, _, _, err := buildCluster(clusterConfig{Validators: 2, DataDir: dir, Sync: store.SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, n := range nodes2 {
			n.Close()
		}
	}()
	for i, n := range nodes2 {
		if n.Address() != wantAddrs[i] {
			t.Fatalf("validator %d identity changed across restart", i)
		}
		if n.Height() != 1 {
			t.Fatalf("validator %d recovered height %d, want 1", i, n.Height())
		}
		if n.Head().Hash() != wantHead {
			t.Fatalf("validator %d recovered a different head", i)
		}
	}
}

// TestRunRejectsBadFsyncPolicy: an unknown -fsync value is a flag error.
func TestRunRejectsBadFsyncPolicy(t *testing.T) {
	if err := run([]string{"-fsync", "sometimes"}); err == nil {
		t.Fatal("bad fsync policy accepted")
	}
}

// TestRunGracefulShutdown boots the full binary path with a durable data
// dir, delivers SIGTERM, and verifies run() returns cleanly having
// flushed the stores (the dir reopens at a consistent height).
func TestRunGracefulShutdown(t *testing.T) {
	dir := t.TempDir()
	done := make(chan error, 1)
	go func() {
		done <- run([]string{
			"-validators", "2", "-interval", "10ms",
			"-http", "127.0.0.1:0", "-data-dir", dir, "-fsync", "never",
		})
	}()
	// Let it boot and seal a few empty blocks, then ask it to stop. The
	// signal is re-sent until the handler (installed inside run) wins.
	time.Sleep(300 * time.Millisecond)
	deadline := time.After(5 * time.Second)
	for {
		_ = syscall.Kill(os.Getpid(), syscall.SIGTERM)
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("run returned %v on SIGTERM", err)
			}
			// The flushed store must reopen as a consistent chain.
			nodes, _, _, err := buildCluster(clusterConfig{Validators: 2, DataDir: dir, Sync: store.SyncNever})
			if err != nil {
				t.Fatalf("reopen after shutdown: %v", err)
			}
			for _, n := range nodes {
				n.Close()
			}
			return
		case <-deadline:
			t.Fatal("run did not exit within 5s of SIGTERM")
		case <-time.After(100 * time.Millisecond):
		}
	}
}

func TestPostTxsBatchEndpoint(t *testing.T) {
	nodes, network, deAddr := newTestCluster(t, 2)
	srv := httptest.NewServer(newAPIMux(nodes, network, deAddr, time.Second))
	defer srv.Close()

	sender := cryptoutil.MustGenerateKey()
	const batchSize = 8
	txs := make([]*chain.Tx, batchSize)
	for i := range txs {
		args := distexchange.RegisterPodArgs{
			OwnerWebID: fmt.Sprintf("https://owner%d.example/profile#me", i),
			Location:   fmt.Sprintf("https://owner%d.example/", i),
		}
		tx, err := chain.NewTx(sender, uint64(i), deAddr, "registerPod", args, distexchange.DefaultGasLimit)
		if err != nil {
			t.Fatal(err)
		}
		txs[i] = tx
	}
	body, err := json.Marshal(txs)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(srv.URL+"/txs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /txs status = %d", resp.StatusCode)
	}
	var out struct {
		Accepted int      `json:"accepted"`
		Hashes   []string `json:"hashes"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Accepted != batchSize || len(out.Hashes) != batchSize {
		t.Fatalf("accepted %d hashes %d, want %d", out.Accepted, len(out.Hashes), batchSize)
	}
	if got := nodes[0].PendingTxs(); got != batchSize {
		t.Fatalf("pending = %d, want %d", got, batchSize)
	}
	block, err := network.SealNext()
	if err != nil {
		t.Fatal(err)
	}
	if len(block.Txs) != batchSize {
		t.Fatalf("sealed %d txs, want %d", len(block.Txs), batchSize)
	}

	// A tampered batch is rejected outright.
	txs[0].Args = []byte(`{"ownerWebID":"evil"}`)
	body, _ = json.Marshal(txs[:1])
	resp2, err := http.Post(srv.URL+"/txs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Fatalf("tampered batch status = %d, want 400", resp2.StatusCode)
	}
}

// registerPodTx builds a signed registerPod transaction at the default
// gas price with a unique owner derived from (label, nonce).
func registerPodTx(t *testing.T, key *cryptoutil.KeyPair, nonce uint64, deAddr cryptoutil.Address, label string) *chain.Tx {
	t.Helper()
	args := distexchange.RegisterPodArgs{
		OwnerWebID: fmt.Sprintf("https://%s-%d.example/profile#me", label, nonce),
		Location:   fmt.Sprintf("https://%s-%d.example/", label, nonce),
	}
	tx, err := chain.NewTx(key, nonce, deAddr, "registerPod", args, distexchange.DefaultGasLimit)
	if err != nil {
		t.Fatal(err)
	}
	return tx
}

// newOverloadCluster builds a deliberately tiny cluster: a 4-slot
// mempool so overload behaviour is reachable with a handful of txs.
func newOverloadCluster(t *testing.T) ([]*chain.Node, *chain.Network, cryptoutil.Address, *httptest.Server) {
	t.Helper()
	nodes, network, deAddr, err := buildCluster(clusterConfig{
		Validators: 1, Sync: store.SyncNever, MempoolCap: 4, SenderQuota: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		for _, n := range nodes {
			n.Close()
		}
	})
	srv := httptest.NewServer(newAPIMux(nodes, network, deAddr, time.Second))
	t.Cleanup(srv.Close)
	return nodes, network, deAddr, srv
}

// TestPostTxsBackpressure429: a full mempool answers POST /txs with 429
// and a Retry-After hint, and the same batch is accepted verbatim once
// a sealed block drains the pool.
func TestPostTxsBackpressure429(t *testing.T) {
	_, network, deAddr, srv := newOverloadCluster(t)

	filler := cryptoutil.MustGenerateKey()
	fill := make([]*chain.Tx, 4)
	for i := range fill {
		fill[i] = registerPodTx(t, filler, uint64(i), deAddr, "filler")
	}
	body, _ := json.Marshal(fill)
	resp, err := http.Post(srv.URL+"/txs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("filling batch status = %d", resp.StatusCode)
	}

	// An equally-priced newcomer cannot displace anything: 429, not 400.
	late := cryptoutil.MustGenerateKey()
	lateBody, _ := json.Marshal([]*chain.Tx{registerPodTx(t, late, 0, deAddr, "late")})
	resp, err = http.Post(srv.URL+"/txs", "application/json", bytes.NewReader(lateBody))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overload status = %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "1" {
		t.Fatalf("Retry-After = %q, want \"1\"", ra)
	}

	// Sealing drains the pool; the retried batch now fits.
	if _, err := network.SealNext(); err != nil {
		t.Fatal(err)
	}
	resp, err = http.Post(srv.URL+"/txs", "application/json", bytes.NewReader(lateBody))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("retry after seal status = %d, want 200", resp.StatusCode)
	}
}

// TestTxClientRetriesBackpressure drives the core.TxClient against a
// full pool: every early attempt gets 429, a concurrent seal frees the
// pool, and the client's capped backoff lands the batch without the
// caller seeing the backpressure.
func TestTxClientRetriesBackpressure(t *testing.T) {
	_, network, deAddr, srv := newOverloadCluster(t)

	filler := cryptoutil.MustGenerateKey()
	fill := make([]*chain.Tx, 4)
	for i := range fill {
		fill[i] = registerPodTx(t, filler, uint64(i), deAddr, "filler")
	}
	if _, err := network.SubmitEverywhereBatch(fill); err != nil {
		t.Fatal(err)
	}

	sealed := make(chan error, 1)
	go func() {
		time.Sleep(40 * time.Millisecond)
		_, err := network.SealNext()
		sealed <- err
	}()

	client := &core.TxClient{
		BaseURL: srv.URL,
		// MaxDelay caps the server's 1s Retry-After hint so the test
		// stays fast while still exercising the hint-parsing path.
		Policy: core.RetryPolicy{MaxAttempts: 50, BaseDelay: 5 * time.Millisecond, MaxDelay: 20 * time.Millisecond},
	}
	late := cryptoutil.MustGenerateKey()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	accepted, err := client.Submit(ctx, []*chain.Tx{registerPodTx(t, late, 0, deAddr, "late")})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if accepted != 1 {
		t.Fatalf("accepted = %d, want 1", accepted)
	}
	if err := <-sealed; err != nil {
		t.Fatal(err)
	}
}

// TestTxStreamEndpoint exercises POST /txs/stream: an overlong upload
// is admitted up to capacity with per-transaction verdicts — admitted
// txs report ok, priced-out txs report a retryable error, and a
// forged signature reports a terminal one — instead of the all-or-
// nothing rejection of POST /txs.
func TestTxStreamEndpoint(t *testing.T) {
	nodes, network, deAddr, srv := newOverloadCluster(t)

	sender := cryptoutil.MustGenerateKey()
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for nonce := range uint64(6) {
		if err := enc.Encode(registerPodTx(t, sender, nonce, deAddr, "stream")); err != nil {
			t.Fatal(err)
		}
	}
	forged := registerPodTx(t, cryptoutil.MustGenerateKey(), 0, deAddr, "forged")
	forged.Args = []byte(`{"ownerWebID":"evil"}`)
	if err := enc.Encode(forged); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Post(srv.URL+"/txs/stream", "application/json", &buf)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /txs/stream status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q", ct)
	}

	var ok, retryable, terminal int
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var v core.TxVerdictWire
		if err := json.Unmarshal(sc.Bytes(), &v); err != nil {
			t.Fatalf("bad verdict line %q: %v", sc.Text(), err)
		}
		switch {
		case v.Ok:
			ok++
		case v.Retryable:
			retryable++
		default:
			terminal++
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	// 4 fit the pool; nonce 4 is priced out (retryable); nonce 5 then
	// fails its nonce check — the cascading verdict for a gapped sender
	// queue — and the forgery fails verification, both terminal.
	if ok != 4 || retryable != 1 || terminal != 2 {
		t.Fatalf("verdicts ok=%d retryable=%d terminal=%d, want 4/1/2", ok, retryable, terminal)
	}
	if got := nodes[0].PendingTxs(); got != 4 {
		t.Fatalf("pending = %d, want 4", got)
	}
	block, err := network.SealNext()
	if err != nil {
		t.Fatal(err)
	}
	if len(block.Txs) != 4 {
		t.Fatalf("sealed %d txs, want 4", len(block.Txs))
	}
}

// TestDebugMetricsEndpoint wires the cluster the way -debug-addr does
// and scrapes the observability surface: /metrics must be valid
// Prometheus exposition with enough series for a dashboard, and the
// committed block must be visible in the counters.
func TestDebugMetricsEndpoint(t *testing.T) {
	reg := obs.NewRegistry()
	metrics := chain.NewMetrics(reg)
	nodes, network, deAddr, err := buildCluster(clusterConfig{Validators: 2, Sync: store.SyncNever, Registry: reg, Metrics: metrics})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, n := range nodes {
			n.Close()
		}
	}()

	sender := cryptoutil.MustGenerateKey()
	args := distexchange.RegisterPodArgs{
		OwnerWebID: "https://metrics.example/profile#me",
		Location:   "https://metrics.example/",
	}
	tx, err := chain.NewTx(sender, 0, deAddr, "registerPod", args, distexchange.DefaultGasLimit)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := network.SubmitEverywhere(tx); err != nil {
		t.Fatal(err)
	}
	if _, err := network.SealNext(); err != nil {
		t.Fatal(err)
	}

	srv := httptest.NewServer(obs.DebugMux(reg, metrics.Tracer))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	series := 0
	for _, line := range strings.Split(string(body), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		series++
		if !strings.Contains(line, " ") {
			t.Fatalf("malformed sample line %q", line)
		}
	}
	if series < 25 {
		t.Fatalf("/metrics renders %d series, want >= 25:\n%s", series, body)
	}
	if !strings.Contains(string(body), "chain_blocks_committed_total 1") {
		t.Fatalf("committed block not visible in exposition:\n%s", body)
	}

	for _, path := range []string{"/debug/vars", "/debug/traces"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		var v any
		err = json.NewDecoder(resp.Body).Decode(&v)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("GET %s is not valid JSON: %v", path, err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s = %d", path, resp.StatusCode)
		}
	}
}
