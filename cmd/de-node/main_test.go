package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/chain"
	"repro/internal/contract"
	"repro/internal/cryptoutil"
	"repro/internal/distexchange"
	"repro/internal/tee"
)

func TestRunRejectsBadValidatorCount(t *testing.T) {
	if err := run([]string{"-validators", "0"}); err == nil {
		t.Fatal("zero validators accepted")
	}
}

func TestRunRejectsBadFlag(t *testing.T) {
	if err := run([]string{"-bogus"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}

// newTestCluster mirrors run()'s cluster construction for handler tests.
func newTestCluster(t *testing.T, validators int) ([]*chain.Node, *chain.Network, cryptoutil.Address) {
	t.Helper()
	manufacturer, err := tee.NewManufacturer("tee-manufacturer")
	if err != nil {
		t.Fatal(err)
	}
	runtime := contract.NewRuntime()
	deAddr := runtime.Deploy(distexchange.ContractName, distexchange.New(distexchange.Config{
		ManufacturerCAKey: manufacturer.CAPublicBytes(),
		ManufacturerCA:    manufacturer.CAAddress(),
	}))
	keys := make([]*cryptoutil.KeyPair, validators)
	auths := make([]cryptoutil.Address, validators)
	for i := range validators {
		keys[i] = cryptoutil.MustGenerateKey()
		auths[i] = keys[i].Address()
	}
	genesis := time.Now()
	nodes := make([]*chain.Node, validators)
	for i := range validators {
		nodes[i], err = chain.NewNode(chain.Config{
			Key: keys[i], Authorities: auths, Executor: runtime, GenesisTime: genesis,
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	network, err := chain.NewNetwork(nodes...)
	if err != nil {
		t.Fatal(err)
	}
	return nodes, network, deAddr
}

func TestPostTxsBatchEndpoint(t *testing.T) {
	nodes, network, deAddr := newTestCluster(t, 2)
	srv := httptest.NewServer(newAPIMux(nodes, network, deAddr))
	defer srv.Close()

	sender := cryptoutil.MustGenerateKey()
	const batchSize = 8
	txs := make([]*chain.Tx, batchSize)
	for i := range txs {
		args := distexchange.RegisterPodArgs{
			OwnerWebID: fmt.Sprintf("https://owner%d.example/profile#me", i),
			Location:   fmt.Sprintf("https://owner%d.example/", i),
		}
		tx, err := chain.NewTx(sender, uint64(i), deAddr, "registerPod", args, distexchange.DefaultGasLimit)
		if err != nil {
			t.Fatal(err)
		}
		txs[i] = tx
	}
	body, err := json.Marshal(txs)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(srv.URL+"/txs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /txs status = %d", resp.StatusCode)
	}
	var out struct {
		Accepted int      `json:"accepted"`
		Hashes   []string `json:"hashes"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Accepted != batchSize || len(out.Hashes) != batchSize {
		t.Fatalf("accepted %d hashes %d, want %d", out.Accepted, len(out.Hashes), batchSize)
	}
	if got := nodes[0].PendingTxs(); got != batchSize {
		t.Fatalf("pending = %d, want %d", got, batchSize)
	}
	block, err := network.SealNext()
	if err != nil {
		t.Fatal(err)
	}
	if len(block.Txs) != batchSize {
		t.Fatalf("sealed %d txs, want %d", len(block.Txs), batchSize)
	}

	// A tampered batch is rejected outright.
	txs[0].Args = []byte(`{"ownerWebID":"evil"}`)
	body, _ = json.Marshal(txs[:1])
	resp2, err := http.Post(srv.URL+"/txs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Fatalf("tampered batch status = %d, want 400", resp2.StatusCode)
	}
}
