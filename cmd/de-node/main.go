// Command de-node runs a proof-of-authority blockchain cluster hosting
// the DistExchange application, sealing blocks at a fixed interval and
// exposing a small HTTP status/query API.
//
// Usage:
//
//	de-node [-validators 3] [-interval 1s] [-http :8545]
//	        [-data-dir DIR] [-fsync interval] [-snapshot-every 32]
//	        [-mempool-cap 8192] [-sender-quota 1024] [-price-bump 10]
//	        [-debug-addr :6060]
//
// -debug-addr starts a second, private HTTP server with the
// observability endpoints: GET /metrics (Prometheus text exposition of
// validator 0's chain and WAL instruments), /debug/vars,
// /debug/traces (recent tx-lifecycle traces), and the /debug/pprof/
// suite. Without the flag no instrument is live: every hot-path hook
// stays on the no-op path and nothing listens.
//
// With -data-dir each validator journals sealed blocks to a write-ahead
// log and periodic state snapshots under DIR/node-<i>/, and persists its
// authority key there, so a restarted process resumes the same chain at
// the height it left off. An empty -data-dir (the default) keeps the
// historical all-in-memory behaviour. SIGINT/SIGTERM trigger a graceful
// shutdown: sealing stops, the HTTP server drains, and every store is
// flushed and closed.
//
// Endpoints:
//
//	GET  /status              cluster height, gas totals, oracle stats
//	GET  /resources           the DE App resource index (JSON)
//	GET  /violations?iri=...  violations recorded for a resource
//	POST /txs                 submit a JSON array of signed transactions
//	                          as one batch (verified concurrently,
//	                          broadcast to every validator); answers
//	                          429 + Retry-After when the mempool is
//	                          full or the sender's quota is exhausted
//	POST /txs/stream          streaming ingestion: a sequence of JSON
//	                          transactions in, one NDJSON verdict line
//	                          out per transaction — what fits is
//	                          admitted, the rest is reported with a
//	                          retryable flag instead of failing the
//	                          whole upload
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"math"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"syscall"
	"time"

	"repro/internal/chain"
	"repro/internal/contract"
	"repro/internal/core"
	"repro/internal/cryptoutil"
	"repro/internal/distexchange"
	"repro/internal/obs"
	"repro/internal/store"
	"repro/internal/tee"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "de-node:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("de-node", flag.ContinueOnError)
	validators := fs.Int("validators", 3, "number of authority nodes")
	interval := fs.Duration("interval", time.Second, "block interval")
	httpAddr := fs.String("http", ":8545", "HTTP API listen address")
	dataDir := fs.String("data-dir", "", "durable storage root (empty = in-memory; WAL + snapshots + keys under <dir>/node-<i>/)")
	fsync := fs.String("fsync", "interval", "WAL fsync policy: always, interval, never")
	snapshotEvery := fs.Int("snapshot-every", 0, "state snapshot cadence in blocks (0 = package default)")
	execWorkers := fs.Int("exec-workers", 0, "parallel transaction execution workers per node (0 = GOMAXPROCS, 1 = serial; blocks are bit-identical at any setting)")
	mempoolCap := fs.Int("mempool-cap", 0, "mempool capacity in transactions (0 = package default; full pool evicts the cheapest tail or answers 429)")
	senderQuota := fs.Int("sender-quota", 0, "max pending transactions per sender (0 = package default)")
	priceBump := fs.Int("price-bump", 0, "minimum replace-by-fee gas-price bump in percent (0 = package default)")
	debugAddr := fs.String("debug-addr", "", "observability listen address (empty = disabled; GET /metrics, /debug/vars, /debug/traces, /debug/pprof/)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *validators < 1 {
		return fmt.Errorf("validators must be >= 1")
	}
	syncPolicy, err := store.ParseSyncPolicy(*fsync)
	if err != nil {
		return err
	}

	// Instruments are live only when something can scrape them; with the
	// flag unset every hot-path hook stays no-op.
	var reg *obs.Registry
	var metrics *chain.Metrics
	if *debugAddr != "" {
		reg = obs.NewRegistry()
		metrics = chain.NewMetrics(reg)
	}

	nodes, network, deAddr, err := buildCluster(clusterConfig{
		Validators:    *validators,
		DataDir:       *dataDir,
		Sync:          syncPolicy,
		SnapshotEvery: *snapshotEvery,
		ExecWorkers:   *execWorkers,
		MempoolCap:    *mempoolCap,
		SenderQuota:   *senderQuota,
		PriceBump:     *priceBump,
		Registry:      reg,
		Metrics:       metrics,
	})
	if err != nil {
		return err
	}
	closeNodes := func() {
		for i, n := range nodes {
			if err := n.Close(); err != nil {
				log.Printf("close validator %d: %v", i, err)
			}
		}
	}

	log.Printf("DE App deployed at %s on a %d-validator PoA cluster", deAddr, *validators)
	if *dataDir != "" {
		log.Printf("durable storage under %s (fsync=%s), height %d recovered",
			*dataDir, syncPolicy, nodes[0].Height())
	}
	for i, n := range nodes {
		log.Printf("  validator %d: %s", i, n.Address().Short())
	}

	// Background sealing loop.
	stop := make(chan struct{})
	sealerDone := make(chan struct{})
	go func() {
		defer close(sealerDone)
		ticker := time.NewTicker(*interval)
		defer ticker.Stop()
		for {
			select {
			case <-stop:
				return
			case <-ticker.C:
				block, err := network.SealNext()
				if err != nil {
					log.Printf("seal: %v", err)
					continue
				}
				if len(block.Txs) > 0 {
					log.Printf("block %d: %d txs, %d gas", block.Header.Number, len(block.Txs), block.GasUsed())
				}
			}
		}
	}()

	mux := newAPIMux(nodes, network, deAddr, *interval)

	srv := &http.Server{Addr: *httpAddr, Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	log.Printf("HTTP API on %s (GET /status, /resources, /violations?iri=...; POST /txs, /txs/stream)", *httpAddr)

	// The observability server is separate from the API server: pprof and
	// metrics bind to a private address and never ride on the public mux.
	var debugSrv *http.Server
	if reg != nil {
		debugSrv = &http.Server{
			Addr:              *debugAddr,
			Handler:           obs.DebugMux(reg, metrics.Tracer),
			ReadHeaderTimeout: 5 * time.Second,
		}
		go func() {
			if err := debugSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				log.Printf("debug server: %v", err)
			}
		}()
		log.Printf("observability on %s (GET /metrics, /debug/vars, /debug/traces, /debug/pprof/)", *debugAddr)
	}
	shutdownDebug := func(ctx context.Context) {
		if debugSrv == nil {
			return
		}
		if err := debugSrv.Shutdown(ctx); err != nil {
			log.Printf("debug shutdown: %v", err)
		}
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case s := <-sig:
		log.Printf("received %s, shutting down", s)
		// Ordered shutdown: no new blocks, drain HTTP, then flush and
		// close every store so the WAL tail is durable before exit.
		close(stop)
		<-sealerDone
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("http shutdown: %v", err)
		}
		shutdownDebug(ctx)
		closeNodes()
		return nil
	case err := <-errCh:
		close(stop)
		<-sealerDone
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		shutdownDebug(ctx)
		closeNodes()
		return err
	}
}

// clusterConfig collects the knobs run() threads into buildCluster —
// one struct instead of a nine-positional-argument signature.
type clusterConfig struct {
	Validators    int
	DataDir       string
	Sync          store.SyncPolicy
	SnapshotEvery int
	ExecWorkers   int
	MempoolCap    int
	SenderQuota   int
	PriceBump     int
	Registry      *obs.Registry
	Metrics       *chain.Metrics
}

// buildCluster constructs the validator cluster: the contract runtime
// with the DE App, one node per validator (reopened from its durable
// store when cfg.DataDir is set, with the authority key persisted
// alongside it), and the broadcast network.
func buildCluster(cc clusterConfig) ([]*chain.Node, *chain.Network, cryptoutil.Address, error) {
	validators := cc.Validators
	dataDir := cc.DataDir
	manufacturer, err := tee.NewManufacturer("tee-manufacturer")
	if err != nil {
		return nil, nil, cryptoutil.Address{}, err
	}
	runtime := contract.NewRuntime()
	deAddr := runtime.Deploy(distexchange.ContractName, distexchange.New(distexchange.Config{
		ManufacturerCAKey: manufacturer.CAPublicBytes(),
		ManufacturerCA:    manufacturer.CAAddress(),
	}))

	keys := make([]*cryptoutil.KeyPair, validators)
	auths := make([]cryptoutil.Address, validators)
	for i := range validators {
		keys[i], err = loadOrCreateKey(dataDir, i)
		if err != nil {
			return nil, nil, cryptoutil.Address{}, err
		}
		auths[i] = keys[i].Address()
	}
	genesis := time.Now()
	nodes := make([]*chain.Node, validators)
	for i := range validators {
		cfg := chain.Config{
			Key:                 keys[i],
			Authorities:         auths,
			Executor:            runtime,
			GenesisTime:         genesis,
			ExecWorkers:         cc.ExecWorkers,
			MempoolCapacity:     cc.MempoolCap,
			MaxPendingPerSender: cc.SenderQuota,
			PriceBumpPercent:    cc.PriceBump,
		}
		if i == 0 {
			// Validator 0 is the observed node — the same one the API
			// serves reads from.
			cfg.Metrics = cc.Metrics
		}
		if dataDir != "" {
			cfg.DataDir = nodeDir(dataDir, i)
			cfg.SnapshotInterval = cc.SnapshotEvery
			cfg.Persist = store.Options{Sync: cc.Sync}
			if cc.Registry != nil && i == 0 {
				cfg.Persist.Metrics = store.NewMetrics(cc.Registry)
			}
		}
		nodes[i], err = chain.OpenNode(cfg)
		if err != nil {
			for _, n := range nodes[:i] {
				n.Close()
			}
			return nil, nil, cryptoutil.Address{}, err
		}
	}
	network, err := chain.NewNetwork(nodes...)
	if err != nil {
		return nil, nil, cryptoutil.Address{}, err
	}
	return nodes, network, deAddr, nil
}

// nodeDir is validator i's storage root.
func nodeDir(dataDir string, i int) string {
	return filepath.Join(dataDir, fmt.Sprintf("node-%d", i))
}

// loadOrCreateKey returns validator i's authority key: random for
// in-memory clusters, persisted under the validator's data dir
// otherwise (a restart must keep its authority identity, or the
// recovered chain's proposer set would no longer match the cluster's).
func loadOrCreateKey(dataDir string, i int) (*cryptoutil.KeyPair, error) {
	if dataDir == "" {
		return cryptoutil.GenerateKey(nil)
	}
	return cryptoutil.LoadOrCreateKeyFile(filepath.Join(nodeDir(dataDir, i), "key.der"))
}

// retryAfterSeconds turns the block interval into a Retry-After hint:
// one block drains pool headroom, so a backpressured client should wait
// about that long (whole seconds, at least 1 — the header has no finer
// granularity).
func retryAfterSeconds(interval time.Duration) string {
	secs := int(math.Ceil(interval.Seconds()))
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}

// backpressured reports whether err is transient admission pressure
// (full pool, exhausted sender quota) that maps to 429 + Retry-After
// rather than a 400-class deterministic rejection.
func backpressured(err error) bool {
	return errors.Is(err, chain.ErrPoolFull) || errors.Is(err, chain.ErrQuotaExceeded)
}

// streamChunkSize bounds how many decoded transactions /txs/stream
// verifies and broadcasts per round trip to the network layer.
const streamChunkSize = 256

// newAPIMux builds the node's HTTP status/query/submission API. The
// block interval sizes the Retry-After hint on 429 responses.
func newAPIMux(nodes []*chain.Node, network *chain.Network, deAddr cryptoutil.Address, interval time.Duration) *http.ServeMux {
	retryAfter := retryAfterSeconds(interval)
	mux := http.NewServeMux()
	mux.HandleFunc("GET /status", func(w http.ResponseWriter, r *http.Request) {
		head := nodes[0].Head()
		writeJSON(w, map[string]any{
			"height":     head.Header.Number,
			"headHash":   head.Hash().String(),
			"validators": len(nodes),
			"deApp":      deAddr.String(),
			"totalGas":   nodes[0].Costs().TotalSpent(),
			"stateKeys":  nodes[0].State().Len(),
		})
	})
	mux.HandleFunc("GET /resources", func(w http.ResponseWriter, r *http.Request) {
		args, _ := json.Marshal(distexchange.ListResourcesArgs{})
		out, err := nodes[0].Query(deAddr, "listResources", args)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write(out)
	})
	mux.HandleFunc("POST /txs", func(w http.ResponseWriter, r *http.Request) {
		var txs []*chain.Tx
		if err := json.NewDecoder(r.Body).Decode(&txs); err != nil {
			http.Error(w, "bad transaction batch: "+err.Error(), http.StatusBadRequest)
			return
		}
		if len(txs) == 0 {
			http.Error(w, "empty transaction batch", http.StatusBadRequest)
			return
		}
		hashes, err := network.SubmitEverywhereBatch(txs)
		if err != nil {
			status := http.StatusBadRequest
			if backpressured(err) {
				// Transient pressure, not a malformed batch: tell the
				// client when the pool is likely to have drained.
				w.Header().Set("Retry-After", retryAfter)
				status = http.StatusTooManyRequests
			}
			http.Error(w, err.Error(), status)
			return
		}
		out := make([]string, len(hashes))
		for i, h := range hashes {
			out[i] = h.String()
		}
		writeJSON(w, map[string]any{"accepted": len(out), "hashes": out})
	})
	mux.HandleFunc("POST /txs/stream", func(w http.ResponseWriter, r *http.Request) {
		// Streaming ingestion: decode transactions as they arrive, admit
		// them in bounded chunks, and answer one NDJSON verdict line per
		// transaction. A full pool fails individual transactions (marked
		// retryable), never the whole upload.
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.Header().Set("Retry-After", retryAfter)
		flusher, _ := w.(http.Flusher)
		enc := json.NewEncoder(w)
		emit := func(chunk []*chain.Tx) {
			for _, v := range network.SubmitEverywhereVerdicts(chunk) {
				line := core.TxVerdictWire{Hash: v.Hash.String(), Ok: v.Admitted()}
				if v.Err != nil {
					line.Error = v.Err.Error()
					line.Retryable = backpressured(v.Err)
				}
				_ = enc.Encode(line)
			}
			if flusher != nil {
				flusher.Flush()
			}
		}
		dec := json.NewDecoder(r.Body)
		chunk := make([]*chain.Tx, 0, streamChunkSize)
		for {
			var tx *chain.Tx
			if err := dec.Decode(&tx); err == io.EOF {
				break
			} else if err != nil {
				if len(chunk) > 0 {
					emit(chunk)
				}
				// Mid-stream garbage: report what we can and stop. The
				// status line already went out with the first verdict, so
				// the error rides the stream as a final pseudo-verdict.
				_ = enc.Encode(core.TxVerdictWire{Error: "bad transaction stream: " + err.Error()})
				return
			}
			if tx == nil {
				continue
			}
			chunk = append(chunk, tx)
			if len(chunk) == streamChunkSize {
				emit(chunk)
				chunk = chunk[:0]
			}
		}
		if len(chunk) > 0 {
			emit(chunk)
		}
	})
	mux.HandleFunc("GET /violations", func(w http.ResponseWriter, r *http.Request) {
		iri := r.URL.Query().Get("iri")
		if iri == "" {
			http.Error(w, "missing iri query parameter", http.StatusBadRequest)
			return
		}
		args, _ := json.Marshal(distexchange.GetViolationsArgs{ResourceIRI: iri})
		out, err := nodes[0].Query(deAddr, "getViolations", args)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write(out)
	})
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
