// Command de-node runs a proof-of-authority blockchain cluster hosting
// the DistExchange application, sealing blocks at a fixed interval and
// exposing a small HTTP status/query API.
//
// Usage:
//
//	de-node [-validators 3] [-interval 1s] [-http :8545]
//
// Endpoints:
//
//	GET  /status              cluster height, gas totals, oracle stats
//	GET  /resources           the DE App resource index (JSON)
//	GET  /violations?iri=...  violations recorded for a resource
//	POST /txs                 submit a JSON array of signed transactions
//	                          as one batch (verified concurrently,
//	                          broadcast to every validator)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"time"

	"repro/internal/chain"
	"repro/internal/contract"
	"repro/internal/cryptoutil"
	"repro/internal/distexchange"
	"repro/internal/tee"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "de-node:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("de-node", flag.ContinueOnError)
	validators := fs.Int("validators", 3, "number of authority nodes")
	interval := fs.Duration("interval", time.Second, "block interval")
	httpAddr := fs.String("http", ":8545", "HTTP API listen address")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *validators < 1 {
		return fmt.Errorf("validators must be >= 1")
	}

	manufacturer, err := tee.NewManufacturer("tee-manufacturer")
	if err != nil {
		return err
	}
	runtime := contract.NewRuntime()
	deAddr := runtime.Deploy(distexchange.ContractName, distexchange.New(distexchange.Config{
		ManufacturerCAKey: manufacturer.CAPublicBytes(),
		ManufacturerCA:    manufacturer.CAAddress(),
	}))

	keys := make([]*cryptoutil.KeyPair, *validators)
	auths := make([]cryptoutil.Address, *validators)
	for i := range *validators {
		keys[i] = cryptoutil.MustGenerateKey()
		auths[i] = keys[i].Address()
	}
	genesis := time.Now()
	nodes := make([]*chain.Node, *validators)
	for i := range *validators {
		nodes[i], err = chain.NewNode(chain.Config{
			Key:         keys[i],
			Authorities: auths,
			Executor:    runtime,
			GenesisTime: genesis,
		})
		if err != nil {
			return err
		}
	}
	network, err := chain.NewNetwork(nodes...)
	if err != nil {
		return err
	}

	log.Printf("DE App deployed at %s on a %d-validator PoA cluster", deAddr, *validators)
	for i, a := range auths {
		log.Printf("  validator %d: %s", i, a.Short())
	}

	// Background sealing loop.
	stop := make(chan struct{})
	go func() {
		ticker := time.NewTicker(*interval)
		defer ticker.Stop()
		for {
			select {
			case <-stop:
				return
			case <-ticker.C:
				block, err := network.SealNext()
				if err != nil {
					log.Printf("seal: %v", err)
					continue
				}
				if len(block.Txs) > 0 {
					log.Printf("block %d: %d txs, %d gas", block.Header.Number, len(block.Txs), block.GasUsed())
				}
			}
		}
	}()
	defer close(stop)

	mux := newAPIMux(nodes, network, deAddr)

	srv := &http.Server{Addr: *httpAddr, Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	log.Printf("HTTP API on %s (GET /status, /resources, /violations?iri=...; POST /txs)", *httpAddr)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	select {
	case <-sig:
		log.Println("shutting down")
		return srv.Close()
	case err := <-errCh:
		return err
	}
}

// newAPIMux builds the node's HTTP status/query/submission API.
func newAPIMux(nodes []*chain.Node, network *chain.Network, deAddr cryptoutil.Address) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /status", func(w http.ResponseWriter, r *http.Request) {
		head := nodes[0].Head()
		writeJSON(w, map[string]any{
			"height":     head.Header.Number,
			"headHash":   head.Hash().String(),
			"validators": len(nodes),
			"deApp":      deAddr.String(),
			"totalGas":   nodes[0].Costs().TotalSpent(),
			"stateKeys":  nodes[0].State().Len(),
		})
	})
	mux.HandleFunc("GET /resources", func(w http.ResponseWriter, r *http.Request) {
		args, _ := json.Marshal(distexchange.ListResourcesArgs{})
		out, err := nodes[0].Query(deAddr, "listResources", args)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write(out)
	})
	mux.HandleFunc("POST /txs", func(w http.ResponseWriter, r *http.Request) {
		var txs []*chain.Tx
		if err := json.NewDecoder(r.Body).Decode(&txs); err != nil {
			http.Error(w, "bad transaction batch: "+err.Error(), http.StatusBadRequest)
			return
		}
		if len(txs) == 0 {
			http.Error(w, "empty transaction batch", http.StatusBadRequest)
			return
		}
		hashes, err := network.SubmitEverywhereBatch(txs)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		out := make([]string, len(hashes))
		for i, h := range hashes {
			out[i] = h.String()
		}
		writeJSON(w, map[string]any{"accepted": len(out), "hashes": out})
	})
	mux.HandleFunc("GET /violations", func(w http.ResponseWriter, r *http.Request) {
		iri := r.URL.Query().Get("iri")
		if iri == "" {
			http.Error(w, "missing iri query parameter", http.StatusBadRequest)
			return
		}
		args, _ := json.Marshal(distexchange.GetViolationsArgs{ResourceIRI: iri})
		out, err := nodes[0].Query(deAddr, "getViolations", args)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write(out)
	})
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
