// Command repolint runs the repository's own static analyzers
// (internal/lint) over Go packages and reports every finding that is
// not covered by a reasoned //repolint:ignore waiver.
//
// Usage:
//
//	repolint [-C dir] [-only analyzer,...] [packages]
//
// Packages default to ./... resolved in -C (default: the current
// directory). The exit status is 0 when there are no findings, 1 when
// there are, 2 on a usage or load error. CI runs `repolint ./...` at
// the repository root and fails the build on any nonzero exit.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/lint"
)

func main() {
	os.Exit(run(os.Stdout, os.Stderr, os.Args[1:]))
}

func run(stdout, stderr io.Writer, args []string) int {
	fs := flag.NewFlagSet("repolint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	dir := fs.String("C", ".", "directory to resolve package patterns in")
	only := fs.String("only", "", "comma-separated analyzer subset (default: all)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	analyzers, err := selectAnalyzers(*only)
	if err != nil {
		fmt.Fprintln(stderr, "repolint:", err)
		return 2
	}
	pkgs, err := lint.Load(*dir, fs.Args()...)
	if err != nil {
		fmt.Fprintln(stderr, "repolint:", err)
		return 2
	}
	findings := lint.Run(pkgs, analyzers)
	for _, f := range findings {
		fmt.Fprintln(stdout, f)
	}
	if n := len(findings); n > 0 {
		fmt.Fprintf(stdout, "repolint: %d finding(s)\n", n)
		return 1
	}
	return 0
}

// selectAnalyzers resolves the -only flag against the default set.
func selectAnalyzers(only string) ([]*lint.Analyzer, error) {
	all := lint.Default()
	if only == "" {
		return all, nil
	}
	byName := make(map[string]*lint.Analyzer, len(all))
	for _, a := range all {
		byName[a.Name] = a
	}
	var out []*lint.Analyzer
	for _, name := range strings.Split(only, ",") {
		name = strings.TrimSpace(name)
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q (have lockcheck, determinism, codecsafe, errflow)", name)
		}
		out = append(out, a)
	}
	return out, nil
}
