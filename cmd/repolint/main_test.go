package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestRepoIsClean is the gate CI enforces: repolint over the whole
// repository exits zero. Any unwaived finding — or any waiver without a
// reason — fails this test before it fails the CI job.
func TestRepoIsClean(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run(&stdout, &stderr, []string{"-C", "../..", "./..."})
	if code != 0 {
		t.Fatalf("repolint ./... exited %d\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
	if out := stdout.String(); out != "" {
		t.Fatalf("repolint reported findings on a zero exit:\n%s", out)
	}
}

func TestUnknownAnalyzerRejected(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run(&stdout, &stderr, []string{"-only", "nonsense", "./..."})
	if code != 2 {
		t.Fatalf("exit = %d, want 2 for an unknown -only analyzer", code)
	}
	if !strings.Contains(stderr.String(), "unknown analyzer") {
		t.Fatalf("stderr does not explain the bad flag: %s", stderr.String())
	}
}

func TestOnlySubsetRuns(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run(&stdout, &stderr, []string{"-C", "../..", "-only", "codecsafe,errflow", "./internal/store/"})
	if code != 0 {
		t.Fatalf("repolint -only codecsafe,errflow ./internal/store exited %d\nstdout:\n%s\nstderr:\n%s",
			code, stdout.String(), stderr.String())
	}
}
