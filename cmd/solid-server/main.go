// Command solid-server runs a standalone Solid pod server with Web Access
// Control, the storage substrate of the usage-control architecture.
//
// Usage:
//
//	solid-server [-addr :8080] [-owner https://alice.example/profile#me]
//
// The server starts with an empty pod whose root ACL grants the owner
// full control, registers the owner's signing key in the agent directory,
// and prints the key so a client (e.g. internal/solid.Client) can
// authenticate. A public demo resource is seeded under /public/hello.txt.
package main

import (
	"encoding/hex"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"repro/internal/cryptoutil"
	"repro/internal/simclock"
	"repro/internal/solid"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "solid-server:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("solid-server", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", "listen address")
	owner := fs.String("owner", "https://alice.example/profile#me", "pod owner WebID")
	if err := fs.Parse(args); err != nil {
		return err
	}

	ownerKey, err := cryptoutil.GenerateKey(nil)
	if err != nil {
		return err
	}
	ownerID := solid.WebID(*owner)

	dir := solid.NewMapDirectory()
	dir.Register(ownerID, ownerKey.PublicBytes())

	pod := solid.NewPod(ownerID, "http://localhost"+*addr)
	now := time.Now()
	if err := pod.Put(ownerID, "/public/hello.txt", "text/plain",
		[]byte("hello from a Solid pod with usage control\n"), now); err != nil {
		return err
	}
	acl := solid.NewACL(ownerID, "/public/")
	acl.GrantPublic("world", "/public/", true, solid.ModeRead)
	if err := pod.SetACL(ownerID, "/public/", acl); err != nil {
		return err
	}

	server := solid.NewServer(pod, dir, simclock.Real{}, nil)
	log.Printf("pod owner:      %s", ownerID)
	log.Printf("owner key (hex): %s", hex.EncodeToString(ownerKey.PublicBytes()))
	log.Printf("serving pod on  %s (try GET /public/hello.txt)", *addr)
	return http.ListenAndServe(*addr, server)
}
