// Command solid-server runs a standalone multi-pod Solid host with Web
// Access Control, the storage substrate of the usage-control
// architecture. One process serves any number of pods behind a single
// handler, each mounted at /pods/{owner}/.
//
// Usage:
//
//	solid-server [-addr :8080] [-base http://localhost:8080]
//	             [-owners alice,bob] [-data-dir DIR] [-fsync interval]
//	             [-debug-addr :6061]
//
// -debug-addr starts a second, private HTTP server with the
// observability endpoints: GET /metrics (Prometheus text exposition of
// the host's request-latency, auth-cache, and replay instruments),
// /debug/vars, and the /debug/pprof/ suite. Without the flag no
// instrument is live and nothing listens.
//
// For every name in -owners the server provisions a pod whose root ACL
// grants that owner full control, registers the owner's signing key in
// the agent directory, and prints the key so a client (e.g.
// internal/solid.Client) can authenticate. A public demo resource is
// seeded under /pods/{owner}/public/hello.txt.
//
// With -data-dir each pod journals its content (resources + ACLs) under
// DIR/pods/<owner>/ and the owner keys persist under DIR/keys/, so a
// restarted server serves the exact pod state — ETags and ACL
// generations included — it served before. SIGINT/SIGTERM drain the
// HTTP server and flush every pod store before exit.
package main

import (
	"context"
	"encoding/hex"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"repro/internal/cryptoutil"
	"repro/internal/obs"
	"repro/internal/simclock"
	"repro/internal/solid"
	"repro/internal/store"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "solid-server:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("solid-server", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", "listen address")
	base := fs.String("base", "", "public base URL (default http://localhost<addr>)")
	owners := fs.String("owners", "alice", "comma-separated pod owner names, one pod each")
	dataDir := fs.String("data-dir", "", "durable storage root (empty = in-memory; pod op logs under <dir>/pods/, owner keys under <dir>/keys/)")
	fsync := fs.String("fsync", "interval", "pod op-log fsync policy: always, interval, never")
	debugAddr := fs.String("debug-addr", "", "observability listen address (empty = disabled; GET /metrics, /debug/vars, /debug/pprof/)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	baseURL := *base
	if baseURL == "" {
		if strings.HasPrefix(*addr, ":") {
			baseURL = "http://localhost" + *addr
		} else {
			baseURL = "http://" + *addr
		}
	}
	syncPolicy, err := store.ParseSyncPolicy(*fsync)
	if err != nil {
		return err
	}

	clock := simclock.Real{}
	dir := solid.NewMapDirectory()
	host := solid.NewHost(dir, clock)
	// Wire instruments before any pod is mounted: pods capture the
	// metrics handle at creation. With the flag unset every hook stays
	// no-op.
	var reg *obs.Registry
	if *debugAddr != "" {
		reg = obs.NewRegistry()
		host.SetMetrics(solid.NewMetrics(reg))
	}
	if *dataDir != "" {
		host.EnablePersistence(filepath.Join(*dataDir, "pods"),
			solid.PodStoreOptions{WAL: store.Options{Sync: syncPolicy}})
	}
	names, keys, err := provisionPods(host, dir, baseURL, strings.Split(*owners, ","), clock, *dataDir)
	if err != nil {
		return err
	}
	if len(names) == 0 {
		return fmt.Errorf("no pod owners given")
	}
	// Announce pods in -owners order (map iteration would shuffle the
	// startup output between runs).
	for _, name := range names {
		podBase := baseURL + solid.PodRoutePrefix + name
		log.Printf("pod %-12s owner %s", name, ownerWebID(baseURL, name))
		log.Printf("  owner key (hex): %s", hex.EncodeToString(keys[name].PublicBytes()))
		log.Printf("  try GET %s/public/hello.txt", podBase)
	}

	log.Printf("serving %d pod(s) on %s under %s{owner}/", host.Len(), *addr, solid.PodRoutePrefix)
	srv := &http.Server{Addr: *addr, Handler: host, ReadHeaderTimeout: 5 * time.Second}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()

	// Observability rides on its own private server, never on the pod
	// handler's address.
	var debugSrv *http.Server
	if reg != nil {
		debugSrv = &http.Server{
			Addr:              *debugAddr,
			Handler:           obs.DebugMux(reg, nil),
			ReadHeaderTimeout: 5 * time.Second,
		}
		go func() {
			if err := debugSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Printf("debug server: %v", err)
			}
		}()
		log.Printf("observability on %s (GET /metrics, /debug/vars, /debug/pprof/)", *debugAddr)
	}
	shutdownDebug := func(ctx context.Context) {
		if debugSrv == nil {
			return
		}
		if err := debugSrv.Shutdown(ctx); err != nil {
			log.Printf("debug shutdown: %v", err)
		}
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case s := <-sig:
		log.Printf("received %s, shutting down", s)
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("http shutdown: %v", err)
		}
		shutdownDebug(ctx)
		return host.Close()
	case err := <-errCh:
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		shutdownDebug(ctx)
		host.Close()
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	}
}

// ownerWebID derives the WebID minted for a pod owner name.
func ownerWebID(baseURL, name string) solid.WebID {
	return solid.WebID(baseURL + solid.PodRoutePrefix + name + "/profile#" + name)
}

// provisionPods creates one pod per owner name on the host: a signing
// key registered in the agent directory (persisted under
// dataDir/keys/<name>.der when dataDir is set, so a restart keeps the
// owner identity), a root ACL granting the owner full control, and a
// public demo resource. Pods restored from a durable store are not
// re-seeded — their recovered content is authoritative. It returns the
// provisioned names in input order (blank entries skipped) and each
// owner's key so callers (and tests) can authenticate as them.
func provisionPods(host *solid.Host, dir *solid.MapDirectory, baseURL string, names []string, clock simclock.Clock, dataDir string) ([]string, map[string]*cryptoutil.KeyPair, error) {
	provisioned := make([]string, 0, len(names))
	keys := make(map[string]*cryptoutil.KeyPair)
	for _, name := range names {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		// CreatePod validates the pod name first, so no key file is ever
		// written for a name the host would reject.
		ownerID := ownerWebID(baseURL, name)
		pod, err := host.CreatePod(name, ownerID, baseURL, nil)
		if err != nil {
			return nil, nil, err
		}
		key, err := loadOrCreateOwnerKey(dataDir, name)
		if err != nil {
			return nil, nil, err
		}
		dir.Register(ownerID, key.PublicBytes())
		if count, _ := pod.Stats(); count == 0 {
			// Fresh pod: seed the demo resource and its public ACL. A pod
			// restored from disk keeps exactly what it had.
			if err := pod.Put(ownerID, "/public/hello.txt", "text/plain",
				[]byte("hello from the Solid pod of "+name+"\n"), clock.Now()); err != nil {
				return nil, nil, err
			}
			acl := solid.NewACL(ownerID, "/public/")
			acl.GrantPublic("world", "/public/", true, solid.ModeRead)
			if err := pod.SetACL(ownerID, "/public/", acl); err != nil {
				return nil, nil, err
			}
		}
		provisioned = append(provisioned, name)
		keys[name] = key
	}
	return provisioned, keys, nil
}

// loadOrCreateOwnerKey returns the owner's signing key, persisted under
// the data dir for durable deployments. Callers must have validated the
// name (provisionPods relies on Host.CreatePod for that) before a file
// is created for it.
func loadOrCreateOwnerKey(dataDir, name string) (*cryptoutil.KeyPair, error) {
	if dataDir == "" {
		return cryptoutil.GenerateKey(nil)
	}
	return cryptoutil.LoadOrCreateKeyFile(filepath.Join(dataDir, "keys", name+".der"))
}
