// Command solid-server runs a standalone multi-pod Solid host with Web
// Access Control, the storage substrate of the usage-control
// architecture. One process serves any number of pods behind a single
// handler, each mounted at /pods/{owner}/.
//
// Usage:
//
//	solid-server [-addr :8080] [-base http://localhost:8080] [-owners alice,bob]
//
// For every name in -owners the server provisions a pod whose root ACL
// grants that owner full control, registers the owner's signing key in
// the agent directory, and prints the key so a client (e.g.
// internal/solid.Client) can authenticate. A public demo resource is
// seeded under /pods/{owner}/public/hello.txt.
package main

import (
	"encoding/hex"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"strings"

	"repro/internal/cryptoutil"
	"repro/internal/simclock"
	"repro/internal/solid"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "solid-server:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("solid-server", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", "listen address")
	base := fs.String("base", "", "public base URL (default http://localhost<addr>)")
	owners := fs.String("owners", "alice", "comma-separated pod owner names, one pod each")
	if err := fs.Parse(args); err != nil {
		return err
	}
	baseURL := *base
	if baseURL == "" {
		if strings.HasPrefix(*addr, ":") {
			baseURL = "http://localhost" + *addr
		} else {
			baseURL = "http://" + *addr
		}
	}

	clock := simclock.Real{}
	dir := solid.NewMapDirectory()
	host := solid.NewHost(dir, clock)

	for _, name := range strings.Split(*owners, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		key, err := cryptoutil.GenerateKey(nil)
		if err != nil {
			return err
		}
		podBase := baseURL + solid.PodRoutePrefix + name
		ownerID := solid.WebID(podBase + "/profile#" + name)
		dir.Register(ownerID, key.PublicBytes())

		pod, err := host.CreatePod(name, ownerID, baseURL, nil)
		if err != nil {
			return err
		}
		if err := pod.Put(ownerID, "/public/hello.txt", "text/plain",
			[]byte("hello from the Solid pod of "+name+"\n"), clock.Now()); err != nil {
			return err
		}
		acl := solid.NewACL(ownerID, "/public/")
		acl.GrantPublic("world", "/public/", true, solid.ModeRead)
		if err := pod.SetACL(ownerID, "/public/", acl); err != nil {
			return err
		}
		log.Printf("pod %-12s owner %s", name, ownerID)
		log.Printf("  owner key (hex): %s", hex.EncodeToString(key.PublicBytes()))
		log.Printf("  try GET %s/public/hello.txt", podBase)
	}

	log.Printf("serving %d pod(s) on %s under %s{owner}/", host.Len(), *addr, solid.PodRoutePrefix)
	return http.ListenAndServe(*addr, host)
}
