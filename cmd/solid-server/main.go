// Command solid-server runs a standalone multi-pod Solid host with Web
// Access Control, the storage substrate of the usage-control
// architecture. One process serves any number of pods behind a single
// handler, each mounted at /pods/{owner}/.
//
// Usage:
//
//	solid-server [-addr :8080] [-base http://localhost:8080] [-owners alice,bob]
//
// For every name in -owners the server provisions a pod whose root ACL
// grants that owner full control, registers the owner's signing key in
// the agent directory, and prints the key so a client (e.g.
// internal/solid.Client) can authenticate. A public demo resource is
// seeded under /pods/{owner}/public/hello.txt.
package main

import (
	"encoding/hex"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"strings"

	"repro/internal/cryptoutil"
	"repro/internal/simclock"
	"repro/internal/solid"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "solid-server:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("solid-server", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", "listen address")
	base := fs.String("base", "", "public base URL (default http://localhost<addr>)")
	owners := fs.String("owners", "alice", "comma-separated pod owner names, one pod each")
	if err := fs.Parse(args); err != nil {
		return err
	}
	baseURL := *base
	if baseURL == "" {
		if strings.HasPrefix(*addr, ":") {
			baseURL = "http://localhost" + *addr
		} else {
			baseURL = "http://" + *addr
		}
	}

	clock := simclock.Real{}
	dir := solid.NewMapDirectory()
	host := solid.NewHost(dir, clock)
	names, keys, err := provisionPods(host, dir, baseURL, strings.Split(*owners, ","), clock)
	if err != nil {
		return err
	}
	if len(names) == 0 {
		return fmt.Errorf("no pod owners given")
	}
	// Announce pods in -owners order (map iteration would shuffle the
	// startup output between runs).
	for _, name := range names {
		podBase := baseURL + solid.PodRoutePrefix + name
		log.Printf("pod %-12s owner %s", name, ownerWebID(baseURL, name))
		log.Printf("  owner key (hex): %s", hex.EncodeToString(keys[name].PublicBytes()))
		log.Printf("  try GET %s/public/hello.txt", podBase)
	}

	log.Printf("serving %d pod(s) on %s under %s{owner}/", host.Len(), *addr, solid.PodRoutePrefix)
	return http.ListenAndServe(*addr, host)
}

// ownerWebID derives the WebID minted for a pod owner name.
func ownerWebID(baseURL, name string) solid.WebID {
	return solid.WebID(baseURL + solid.PodRoutePrefix + name + "/profile#" + name)
}

// provisionPods creates one pod per owner name on the host: a fresh
// signing key registered in the agent directory, a root ACL granting the
// owner full control, and a public demo resource. It returns the
// provisioned names in input order (blank entries skipped) and each
// owner's key so callers (and tests) can authenticate as them.
func provisionPods(host *solid.Host, dir *solid.MapDirectory, baseURL string, names []string, clock simclock.Clock) ([]string, map[string]*cryptoutil.KeyPair, error) {
	provisioned := make([]string, 0, len(names))
	keys := make(map[string]*cryptoutil.KeyPair)
	for _, name := range names {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		key, err := cryptoutil.GenerateKey(nil)
		if err != nil {
			return nil, nil, err
		}
		ownerID := ownerWebID(baseURL, name)
		dir.Register(ownerID, key.PublicBytes())

		pod, err := host.CreatePod(name, ownerID, baseURL, nil)
		if err != nil {
			return nil, nil, err
		}
		if err := pod.Put(ownerID, "/public/hello.txt", "text/plain",
			[]byte("hello from the Solid pod of "+name+"\n"), clock.Now()); err != nil {
			return nil, nil, err
		}
		acl := solid.NewACL(ownerID, "/public/")
		acl.GrantPublic("world", "/public/", true, solid.ModeRead)
		if err := pod.SetACL(ownerID, "/public/", acl); err != nil {
			return nil, nil, err
		}
		provisioned = append(provisioned, name)
		keys[name] = key
	}
	return provisioned, keys, nil
}
