package main

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/simclock"
	"repro/internal/solid"
)

// TestRunFlagErrors covers the main path's flag handling: unknown flags
// must surface as errors instead of starting a server.
func TestRunFlagErrors(t *testing.T) {
	if err := run([]string{"-no-such-flag"}); err == nil {
		t.Fatal("unknown flag accepted")
	}
	if err := run([]string{"-owners", " , ,"}); err == nil {
		t.Fatal("empty owner list accepted")
	}
}

// TestServerSignedRoundTrip provisions pods exactly as the binary does,
// serves them, and performs one public fetch plus one signed
// PUT-then-GET round trip with the key the server would print.
func TestServerSignedRoundTrip(t *testing.T) {
	clock := simclock.Real{}
	dir := solid.NewMapDirectory()
	host := solid.NewHost(dir, clock)
	srv := httptest.NewServer(host)
	defer srv.Close()

	names, keys, err := provisionPods(host, dir, srv.URL, []string{"alice", "bob", " "}, clock)
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 2 || len(names) != 2 || names[0] != "alice" || names[1] != "bob" {
		t.Fatalf("provisioned %v (%d keys), want [alice bob]", names, len(keys))
	}
	if host.Len() != 2 {
		t.Fatalf("host serves %d pods, want 2", host.Len())
	}

	// The seeded demo resource is publicly readable without credentials.
	resp, err := http.Get(srv.URL + solid.PodRoutePrefix + "alice/public/hello.txt")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("public GET = %d, want 200", resp.StatusCode)
	}
	if !strings.Contains(string(body), "hello from the Solid pod of alice") {
		t.Fatalf("unexpected demo body %q", body)
	}

	// Signed round trip as alice with the provisioned key.
	alice := solid.NewClient(ownerWebID(srv.URL, "alice"), keys["alice"], clock)
	target := srv.URL + solid.PodRoutePrefix + "alice/private/note.txt"
	if err := alice.Put(target, "text/plain", []byte("signed write")); err != nil {
		t.Fatalf("signed PUT: %v", err)
	}
	got, _, err := alice.Get(target)
	if err != nil {
		t.Fatalf("signed GET: %v", err)
	}
	if string(got) != "signed write" {
		t.Fatalf("round trip returned %q", got)
	}

	// Bob's key must not open alice's private resource.
	bob := solid.NewClient(ownerWebID(srv.URL, "bob"), keys["bob"], clock)
	if _, _, err := bob.Get(target); err == nil {
		t.Fatal("cross-pod read with the wrong owner key succeeded")
	}
}
