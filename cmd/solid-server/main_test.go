package main

import (
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/cryptoutil"
	"repro/internal/obs"
	"repro/internal/simclock"
	"repro/internal/solid"
	"repro/internal/store"
)

// TestRunFlagErrors covers the main path's flag handling: unknown flags
// must surface as errors instead of starting a server.
func TestRunFlagErrors(t *testing.T) {
	if err := run([]string{"-no-such-flag"}); err == nil {
		t.Fatal("unknown flag accepted")
	}
	if err := run([]string{"-owners", " , ,"}); err == nil {
		t.Fatal("empty owner list accepted")
	}
}

// TestServerSignedRoundTrip provisions pods exactly as the binary does,
// serves them, and performs one public fetch plus one signed
// PUT-then-GET round trip with the key the server would print.
func TestServerSignedRoundTrip(t *testing.T) {
	clock := simclock.Real{}
	dir := solid.NewMapDirectory()
	host := solid.NewHost(dir, clock)
	srv := httptest.NewServer(host)
	defer srv.Close()

	names, keys, err := provisionPods(host, dir, srv.URL, []string{"alice", "bob", " "}, clock, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 2 || len(names) != 2 || names[0] != "alice" || names[1] != "bob" {
		t.Fatalf("provisioned %v (%d keys), want [alice bob]", names, len(keys))
	}
	if host.Len() != 2 {
		t.Fatalf("host serves %d pods, want 2", host.Len())
	}

	// The seeded demo resource is publicly readable without credentials.
	resp, err := http.Get(srv.URL + solid.PodRoutePrefix + "alice/public/hello.txt")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("public GET = %d, want 200", resp.StatusCode)
	}
	if !strings.Contains(string(body), "hello from the Solid pod of alice") {
		t.Fatalf("unexpected demo body %q", body)
	}

	// Signed round trip as alice with the provisioned key.
	alice := solid.NewClient(ownerWebID(srv.URL, "alice"), keys["alice"], clock)
	target := srv.URL + solid.PodRoutePrefix + "alice/private/note.txt"
	if err := alice.Put(target, "text/plain", []byte("signed write")); err != nil {
		t.Fatalf("signed PUT: %v", err)
	}
	got, _, err := alice.Get(target)
	if err != nil {
		t.Fatalf("signed GET: %v", err)
	}
	if string(got) != "signed write" {
		t.Fatalf("round trip returned %q", got)
	}

	// Bob's key must not open alice's private resource.
	bob := solid.NewClient(ownerWebID(srv.URL, "bob"), keys["bob"], clock)
	if _, _, err := bob.Get(target); err == nil {
		t.Fatal("cross-pod read with the wrong owner key succeeded")
	}
}

// TestServerDurableRestart provisions a persistent host, writes through
// the signed HTTP path, restarts the host over the same data dir, and
// requires identical content, ETag, owner key, and no demo re-seeding.
func TestServerDurableRestart(t *testing.T) {
	dataDir := t.TempDir()
	clock := simclock.Real{}

	boot := func() (*solid.Host, *httptest.Server, map[string]*cryptoutil.KeyPair) {
		dir := solid.NewMapDirectory()
		host := solid.NewHost(dir, clock)
		host.EnablePersistence(filepath.Join(dataDir, "pods"),
			solid.PodStoreOptions{WAL: store.Options{Sync: store.SyncNever}})
		srv := httptest.NewServer(host)
		_, keys, err := provisionPods(host, dir, srv.URL, []string{"alice"}, clock, dataDir)
		if err != nil {
			t.Fatal(err)
		}
		return host, srv, keys
	}

	host, srv, keys := boot()
	alice := solid.NewClient(ownerWebID(srv.URL, "alice"), keys["alice"], clock)
	target := srv.URL + solid.PodRoutePrefix + "alice/private/note.txt"
	if err := alice.Put(target, "text/plain", []byte("durable write")); err != nil {
		t.Fatal(err)
	}
	pod, _ := host.Lookup("alice")
	res, err := pod.Get(pod.Owner(), "/private/note.txt")
	if err != nil {
		t.Fatal(err)
	}
	wantETag := res.ETag
	wantGen := pod.ACLGeneration()
	wantAddr := keys["alice"].Address()
	srv.Close()
	if err := host.Close(); err != nil {
		t.Fatal(err)
	}

	host2, srv2, keys2 := boot()
	defer srv2.Close()
	defer host2.Close()
	if keys2["alice"].Address() != wantAddr {
		t.Fatal("owner key changed across restart")
	}
	// Same WebID still authenticates over HTTP against restored content.
	alice2 := solid.NewClient(ownerWebID(srv2.URL, "alice"), keys2["alice"], clock)
	body, _, err := alice2.Get(srv2.URL + solid.PodRoutePrefix + "alice/private/note.txt")
	if err != nil {
		t.Fatalf("restored private read: %v", err)
	}
	if string(body) != "durable write" {
		t.Fatalf("restored body %q", body)
	}
	pod2, _ := host2.Lookup("alice")
	res2, err := pod2.Get(pod2.Owner(), "/private/note.txt")
	if err != nil {
		t.Fatal(err)
	}
	if res2.ETag != wantETag {
		t.Fatalf("ETag %s != %s across restart", res2.ETag, wantETag)
	}
	if pod2.ACLGeneration() != wantGen {
		t.Fatalf("ACL generation %d != %d across restart (re-seeded?)", pod2.ACLGeneration(), wantGen)
	}
}

// TestRunRejectsBadFsyncPolicy: an unknown -fsync value errors.
func TestRunRejectsBadFsyncPolicy(t *testing.T) {
	if err := run([]string{"-fsync", "bogus"}); err == nil {
		t.Fatal("bad fsync policy accepted")
	}
}

// TestRunGracefulShutdown: SIGTERM drains the server and run returns
// nil, with the data dir left reopenable.
func TestRunGracefulShutdown(t *testing.T) {
	dataDir := t.TempDir()
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-addr", "127.0.0.1:0", "-owners", "alice",
			"-data-dir", dataDir, "-fsync", "never"})
	}()
	time.Sleep(200 * time.Millisecond)
	deadline := time.After(5 * time.Second)
	for {
		_ = syscall.Kill(os.Getpid(), syscall.SIGTERM)
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("run returned %v on SIGTERM", err)
			}
			if _, err := os.Stat(filepath.Join(dataDir, "pods", "alice")); err != nil {
				t.Fatalf("pod store missing after shutdown: %v", err)
			}
			return
		case <-deadline:
			t.Fatal("run did not exit within 5s of SIGTERM")
		case <-time.After(100 * time.Millisecond):
		}
	}
}

// TestDebugMetricsEndpoint provisions pods with live instruments the
// way -debug-addr does, drives a public fetch, and scrapes /metrics.
func TestDebugMetricsEndpoint(t *testing.T) {
	clock := simclock.Real{}
	dir := solid.NewMapDirectory()
	host := solid.NewHost(dir, clock)
	reg := obs.NewRegistry()
	host.SetMetrics(solid.NewMetrics(reg))
	srv := httptest.NewServer(host)
	defer srv.Close()
	if _, _, err := provisionPods(host, dir, srv.URL, []string{"alice"}, clock, ""); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(srv.URL + solid.PodRoutePrefix + "alice/public/hello.txt")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("public GET = %d", resp.StatusCode)
	}

	debug := httptest.NewServer(obs.DebugMux(reg, nil))
	defer debug.Close()
	mresp, err := http.Get(debug.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	body, err := io.ReadAll(mresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`solid_request_latency_ns_count{class="resource",mode="read"} 1`,
		`solid_auth_cache_total{outcome="miss"}`,
	} {
		if !strings.Contains(string(body), want) {
			t.Fatalf("exposition missing %q:\n%s", want, body)
		}
	}
}
